//! **EH**: classical extendible hashing (paper §4, Figure 6).
//!
//! A directory of `2^global_depth` slots, indexed by the most significant
//! hash bits, points to 4 KB buckets. Each bucket knows its *local depth*
//! `l ≤ g`: exactly `2^(g−l)` contiguous directory slots reference it. An
//! overflowing bucket splits (local depth +1); if its local depth already
//! equals the global depth, the directory doubles first.
//!
//! Buckets are allocated from a [`shortcut_rewire::PagePool`] so that a
//! shortcut directory can later be rewired straight to their physical
//! pages — this is the prerequisite the paper states in §2.1.

mod directory;

pub use directory::Directory;

use crate::bucket::{BucketLayout, BucketRef, InsertOutcome};
use crate::error::IndexError;
use crate::hash::{dir_slot, mult_hash, split_bit};
use crate::stats::IndexStats;
use crate::traits::Index;
use shortcut_core::{CompactionPolicy, MaintMetrics};
use shortcut_rewire::{planned_vmas, PageIdx, PagePool, PoolConfig, PoolHandle, SlotLayout};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Directory-modifying events, emitted (when enabled) for the asynchronous
/// shortcut maintenance of Shortcut-EH.
#[derive(Debug, Clone)]
pub enum DirEvent {
    /// A split redirected `slot` to the bucket in pool page `ppage`.
    SlotUpdated {
        /// Directory slot that changed.
        slot: usize,
        /// Pool page of the bucket it now references.
        ppage: PageIdx,
    },
    /// The directory doubled; a full rebuild of any shortcut is required.
    Doubled {
        /// New slot count (`2^global_depth`).
        slots: usize,
        /// Complete `(slot, pool page)` assignment, sorted by slot.
        assignments: Vec<(usize, PageIdx)>,
    },
    /// The bucket layout was physically compacted (and possibly the
    /// directory doubled in the same step): every slot's backing page may
    /// have changed, so — like [`DirEvent::Doubled`] — any shortcut needs
    /// a full rebuild. After a compaction the assignment vector is an
    /// identity run over freshly placed pages, which the rebuild coalesces
    /// into a handful of `mmap` calls and VMAs.
    Rebuilt {
        /// Slot count (`2^global_depth`).
        slots: usize,
        /// Complete `(slot, pool page)` assignment, sorted by slot.
        assignments: Vec<(usize, PageIdx)>,
    },
}

/// EH tuning.
#[derive(Debug, Clone)]
pub struct EhConfig {
    /// Maximum bucket load factor before splitting (paper: 0.35).
    pub max_load_factor: f64,
    /// Page pool configuration (bucket storage).
    pub pool: PoolConfig,
    /// Emit [`DirEvent`]s (enabled by Shortcut-EH, off for plain EH).
    pub track_events: bool,
    /// Hard cap on the global depth; exceeding it panics with a clear
    /// message instead of exhausting memory (2^28 slots = 2 GB directory).
    pub max_global_depth: u32,
    /// Left-rotation applied to every key's multiplicative hash before
    /// the directory consumes its **top** bits ([`crate::dir_slot`]).
    /// The sharded index routes on the hash's top `s` bits and sets
    /// `hash_rot = s` on each shard, so a shard's directory addresses
    /// with the *next* bits down — keeping per-shard depth semantics
    /// identical to a standalone index instead of every shard's
    /// directory burning `s` constant levels. Default 0 (unsharded).
    pub hash_rot: u32,
    /// Bucket-layout compaction policy (see
    /// [`shortcut_core::CompactionPolicy`]; default disabled). With
    /// `on_rebuild`, every directory doubling relocates the buckets into
    /// directory order, so the emitted rebuild assignment is an identity
    /// run; `background_moves` paces the incremental plans that
    /// Shortcut-EH starts when the mapper requests one.
    pub compaction: CompactionPolicy,
}

impl Default for EhConfig {
    fn default() -> Self {
        EhConfig {
            max_load_factor: 0.35,
            pool: PoolConfig::default(),
            track_events: false,
            max_global_depth: 28,
            compaction: CompactionPolicy::default(),
            hash_rot: 0,
        }
    }
}

/// Outcome of one completed compaction pass.
#[derive(Debug, Clone, Copy)]
pub struct CompactionOutcome {
    /// Bucket pages physically relocated.
    pub pages_moved: usize,
    /// Planned-VMA estimate of the directory layout before the pass.
    pub vmas_before: usize,
    /// Planned-VMA estimate after (an identity layout: one VMA plus one
    /// per fan-in > 1 aliasing boundary).
    pub vmas_after: usize,
}

/// An in-flight incremental compaction: a pre-allocated contiguous target
/// run plus a cursor over the directory. Each step moves a budgeted number
/// of buckets; a doubling aborts the plan (the rebuild pass re-sorts
/// everything anyway).
struct CompactPlan {
    target: PageIdx,
    total: usize,
    slots_at_start: usize,
    next_slot: usize,
    next_target: usize,
    vmas_before: usize,
}

/// The EH baseline (and the synchronous half of Shortcut-EH).
pub struct ExtendibleHash {
    pool: PagePool,
    /// Bucket geometry derived from the pool's slot size (capacity, field
    /// offsets). One bucket fills one slot.
    bucket_layout: BucketLayout,
    dir: Directory,
    bucket_count: usize,
    len: usize,
    max_entries: usize,
    cfg: EhConfig,
    stats: IndexStats,
    events: Vec<DirEvent>,
    /// Active incremental compaction, if any.
    plan: Option<CompactPlan>,
    /// Splits since the last completed compaction pass (fragmentation
    /// proxy used to pace triggered compactions).
    splits_since_compaction: u64,
    /// Mirror of compaction counters into the mapper's metrics (attached
    /// by Shortcut-EH so write-path moves show up next to the mapper's
    /// own counters).
    maint_metrics: Option<Arc<MaintMetrics>>,
}

impl ExtendibleHash {
    /// Build with custom configuration; starts with one empty bucket (the
    /// paper's "effective space of only 4 KB").
    ///
    /// # Errors
    ///
    /// Rejects a load factor outside `(0, 1]` or too small to hold a
    /// single entry, and propagates pool creation / initial-bucket
    /// allocation failures (memfd, `mmap`, reservation sizing) as
    /// [`IndexError::Pool`].
    pub fn try_new(cfg: EhConfig) -> Result<Self, IndexError> {
        if !(cfg.max_load_factor > 0.0 && cfg.max_load_factor <= 1.0) {
            return Err(IndexError::config("max_load_factor must be in (0, 1]"));
        }
        let bucket_layout = BucketLayout::for_slot(cfg.pool.slot_layout);
        let max_entries =
            ((bucket_layout.capacity() as f64) * cfg.max_load_factor).floor() as usize;
        if max_entries < 1 {
            return Err(IndexError::config("load factor too small for any entry"));
        }
        let mut pool = PagePool::new(cfg.pool.clone())?;
        let first = pool.alloc_page()?;
        let ptr = pool.page_ptr(first);
        // SAFETY: freshly allocated, exclusively owned pool slot.
        unsafe { BucketRef::from_ptr(ptr, bucket_layout) }.init(0);
        let mut dir = Directory::new();
        dir.set_all(ptr);
        Ok(ExtendibleHash {
            pool,
            bucket_layout,
            dir,
            bucket_count: 1,
            len: 0,
            max_entries,
            cfg,
            stats: IndexStats::default(),
            events: Vec::new(),
            plan: None,
            splits_since_compaction: 0,
            maint_metrics: None,
        })
    }

    /// Build with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError::Pool`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(EhConfig::default())
    }

    /// Global depth of the directory.
    pub fn global_depth(&self) -> u32 {
        self.dir.global_depth()
    }

    /// Number of directory slots (`2^global_depth`).
    pub fn dir_slots(&self) -> usize {
        self.dir.slot_count()
    }

    /// Number of distinct buckets.
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    /// Average directory fan-in (`slots / buckets`), the §3.2 routing input.
    pub fn avg_fanin(&self) -> f64 {
        self.dir.slot_count() as f64 / self.bucket_count as f64
    }

    /// The pool's physical slot layout (`2^k` base pages per bucket).
    pub fn slot_layout(&self) -> SlotLayout {
        self.pool.layout()
    }

    /// The derived bucket geometry (capacity, offsets) of this index.
    pub fn bucket_layout(&self) -> BucketLayout {
        self.bucket_layout
    }

    /// Whether hugepage backing was requested on the pool.
    pub fn huge_requested(&self) -> bool {
        self.pool.huge_requested()
    }

    /// Whether the pool's hugetlb backend is active (see
    /// [`shortcut_rewire::PoolConfig::huge_pages`]).
    pub fn huge_active(&self) -> bool {
        self.pool.huge_active()
    }

    /// Structural statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Operation counters of the backing page pool.
    pub fn pool_stats(&self) -> shortcut_rewire::StatsSnapshot {
        self.pool.stats()
    }

    /// VMA budget and retirement counters of the backing page pool.
    pub fn vma_stats(&self) -> shortcut_rewire::VmaSnapshot {
        self.pool.vma_snapshot()
    }

    /// The pool's VMA budget — cheap atomic `in_use`/`limit` reads for
    /// hot-path decisions (the full [`ExtendibleHash::vma_stats`]
    /// snapshot takes the retire-list mutex).
    pub fn vma_budget(&self) -> &Arc<shortcut_rewire::VmaBudget> {
        self.pool.budget()
    }

    /// Maximum entries a bucket may hold before splitting.
    pub fn bucket_entry_limit(&self) -> usize {
        self.max_entries
    }

    /// A shareable handle to the bucket pool (for shortcut maintenance).
    pub fn pool_handle(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// Drain the directory events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<DirEvent> {
        std::mem::take(&mut self.events)
    }

    /// The bucket a hash currently routes to.
    fn bucket_for(&self, hash: u64) -> BucketRef {
        let ptr = self.dir.get(dir_slot(hash, self.dir.global_depth()));
        debug_assert!(!ptr.is_null());
        // SAFETY: directory slots always point at live pool bucket slots.
        unsafe { BucketRef::from_ptr(ptr, self.bucket_layout) }
    }

    /// Full `(slot, pool page)` assignment of the current directory.
    ///
    /// # Errors
    ///
    /// Fails only if a directory slot points outside the pool view — an
    /// internal invariant violation surfaced as [`IndexError::Pool`]
    /// rather than a panic on the write path.
    pub fn directory_assignments(&self) -> Result<Vec<(usize, PageIdx)>, IndexError> {
        (0..self.dir.slot_count())
            .map(|s| {
                let ptr = self.dir.get(s);
                let page = self.pool.page_of_ptr(ptr)?;
                Ok((s, page))
            })
            .collect()
    }

    fn double_directory(&mut self) -> Result<(), IndexError> {
        if self.dir.global_depth() >= self.cfg.max_global_depth {
            return Err(IndexError::DepthLimit {
                max_global_depth: self.cfg.max_global_depth,
            });
        }
        // A doubling reshapes every covering range; an in-flight
        // incremental plan is obsolete (the rebuild pass below, or the
        // next triggered plan, re-sorts everything).
        self.abort_compaction_plan();
        self.dir.double();
        self.stats.doublings += 1;
        if self.cfg.compaction.on_rebuild {
            // Compact "for free" while the shortcut must be rebuilt
            // anyway: the emitted assignment is then an identity run the
            // mapper coalesces into a handful of mmap calls and VMAs. A
            // pass that cannot run (no room for the target run) degrades
            // to the plain scattered rebuild instead of failing the
            // insert.
            match self.compact_full() {
                Ok(_) => return Ok(()),
                Err(_) => self.note_compaction_skipped(),
            }
        }
        if self.cfg.track_events {
            let assignments = self.directory_assignments()?;
            self.events.push(DirEvent::Doubled {
                slots: self.dir.slot_count(),
                assignments,
            });
        }
        Ok(())
    }

    /// Split the bucket the hash routes to. One split per call; the insert
    /// loop retries (a skewed bucket may need several rounds).
    ///
    /// On failure (pool exhausted, depth cap) no entry has moved yet — the
    /// overflowing bucket is split only after the fresh page is in hand —
    /// so the index stays fully readable.
    fn split(&mut self, hash: u64) -> Result<(), IndexError> {
        let g = self.dir.global_depth();
        let slot = dir_slot(hash, g);
        let old_ptr = self.dir.get(slot);
        // SAFETY: live bucket slot (directory invariant).
        let old = unsafe { BucketRef::from_ptr(old_ptr, self.bucket_layout) };
        let l = old.local_depth();

        if l == g {
            self.double_directory()?;
        }
        let g = self.dir.global_depth();
        let slot = dir_slot(hash, g);
        // Re-fetch through the directory: a rebuild-time compaction inside
        // `double_directory` may have physically relocated the bucket, and
        // the pre-doubling `old` ref would then point at the retired copy
        // (splitting *that* would lose the entries). Bucket handles are
        // only stable through the directory's translation.
        let old_ptr = self.dir.get(slot);
        // SAFETY: live bucket slot (directory invariant).
        let old = unsafe { BucketRef::from_ptr(old_ptr, self.bucket_layout) };
        let l = old.local_depth();
        debug_assert!(l < g);

        // Covering range of the old bucket: 2^(g-l) contiguous slots.
        let range = Directory::covering_range(slot, g, l);
        let half = range.len() / 2;

        // Fresh bucket page for the upper half.
        let new_page = self.pool.alloc_page()?;
        let new_ptr = self.pool.page_ptr(new_page);
        // SAFETY: freshly allocated pool slot, exclusively ours.
        let new = unsafe { BucketRef::from_ptr(new_ptr, self.bucket_layout) };
        new.init(l + 1);

        // Redistribute: the (l+1)-th hash bit decides the side.
        let entries = old.drain_entries();
        old.init(l + 1);
        for (k, v) in entries {
            let h = self.dir_hash(k);
            let target = if split_bit(h, l) { new } else { old };
            let r = target.insert(k, v, self.bucket_layout.capacity());
            debug_assert_ne!(r, InsertOutcome::Full, "split lost an entry");
        }

        // Redirect the upper half of the covering range.
        let first_new = range.start + half;
        for s in first_new..range.end {
            self.dir.set(s, new_ptr);
            if self.cfg.track_events {
                self.events.push(DirEvent::SlotUpdated {
                    slot: s,
                    ppage: new_page,
                });
            }
        }
        self.bucket_count += 1;
        self.stats.splits += 1;
        self.splits_since_compaction += 1;
        // Opportunistically return relocated-away pages whose reader pins
        // have drained (split frequency makes this prompt without putting
        // a quiescence scan on the per-insert path).
        if self.pool.retired_page_count() > 0 {
            self.pool.reclaim_retired_pages();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Physical compaction: relocate bucket pages into directory order so
    // that a shortcut rebuild becomes an identity mapping the kernel can
    // merge into a handful of VMAs. All moves run here on the write path:
    // `&mut self` guarantees no in-process reader holds a reference to any
    // bucket, so a copy-then-repoint can never tear a lookup. Readers that
    // raced through a *retired shortcut directory* may still dereference
    // the old page — which is why sources are epoch-retired via
    // [`shortcut_rewire::PagePool::retire_page`] instead of freed, and the
    // seqlock ticket discards whatever they read.
    // ------------------------------------------------------------------

    /// `slots − buckets + 1`: the planned-VMA estimate of a perfectly
    /// directory-ordered layout (every covering-range boundary merges;
    /// each fan-in > 1 bucket keeps `fanin − 1` unmergeable internal
    /// boundaries). The cheapest possible "is compaction worth it" input.
    pub fn ideal_layout_vmas(&self) -> usize {
        self.dir.slot_count() - self.bucket_count + 1
    }

    /// Planned-VMA estimate of the **current** bucket layout, as a fresh
    /// shortcut rebuild would map it. `O(slots)` — diagnostics and tests,
    /// not the hot path.
    ///
    /// # Errors
    ///
    /// Propagates [`ExtendibleHash::directory_assignments`] failures.
    pub fn layout_vmas(&self) -> Result<usize, IndexError> {
        self.layout_vmas_at(0)
    }

    /// [`ExtendibleHash::layout_vmas`] for a directory published `shift`
    /// levels coarser (the maintenance engine's budget fallback): coarse
    /// slot `s` maps the page of fine slot `s << shift`.
    ///
    /// # Errors
    ///
    /// Propagates [`ExtendibleHash::directory_assignments`] failures.
    pub fn layout_vmas_at(&self, shift: u32) -> Result<usize, IndexError> {
        let slots = self.dir.slot_count();
        let assignments = self.directory_assignments()?;
        if shift == 0 {
            return Ok(planned_vmas(slots, &assignments));
        }
        let coarse: Vec<(usize, PageIdx)> = (0..slots >> shift)
            .map(|s| (s, assignments[s << shift].1))
            .collect();
        Ok(planned_vmas(slots >> shift, &coarse))
    }

    /// What [`ExtendibleHash::layout_vmas_at`] would report right after a
    /// full compaction, published `shift` levels coarser: each coarse
    /// boundary merges exactly when the preceding coarse slot contains
    /// exactly one directory-ordered bucket. `O(slots)`; used by the
    /// suspension rescue to decide whether a fresh pass can fit a budget
    /// the current layout cannot.
    pub fn ideal_layout_vmas_at(&self, shift: u32) -> usize {
        if shift == 0 {
            return self.ideal_layout_vmas();
        }
        let g = self.dir.global_depth();
        let slots = self.dir.slot_count();
        let step = (1usize << shift).min(slots);
        // Walk coarse slots with a bucket cursor: `bucket_idx` numbers the
        // buckets in directory order (their page index after compaction).
        let mut planned = 0usize;
        let mut prev: Option<usize> = None;
        let (mut fine, mut bucket_idx) = (0usize, 0usize);
        let cover_at = |s: usize| {
            let ptr = self.dir.get(s);
            // SAFETY: live bucket slot (directory invariant).
            let l = unsafe { BucketRef::from_ptr(ptr, self.bucket_layout) }.local_depth();
            1usize << (g - l)
        };
        for s in (0..slots).step_by(step) {
            let mut cover = cover_at(fine);
            while fine + cover <= s {
                fine += cover;
                bucket_idx += 1;
                cover = cover_at(fine);
            }
            if prev != Some(bucket_idx.wrapping_sub(1)) {
                planned += 1;
            }
            prev = Some(bucket_idx);
        }
        planned
    }

    /// Splits since the last completed compaction pass.
    pub fn splits_since_compaction(&self) -> u64 {
        self.splits_since_compaction
    }

    /// Whether an incremental compaction plan is in flight.
    pub fn compaction_plan_active(&self) -> bool {
        self.plan.is_some()
    }

    /// Mirror compaction counters into the mapper's metrics (attached by
    /// Shortcut-EH).
    pub fn set_maint_metrics(&mut self, metrics: Arc<MaintMetrics>) {
        self.maint_metrics = Some(metrics);
    }

    fn note_compaction(&mut self, outcome: CompactionOutcome) {
        self.stats.compactions += 1;
        self.stats.pages_moved += outcome.pages_moved as u64;
        self.splits_since_compaction = 0;
        if let Some(m) = &self.maint_metrics {
            m.compactions.fetch_add(1, Ordering::Relaxed);
            m.pages_moved
                .fetch_add(outcome.pages_moved as u64, Ordering::Relaxed);
            m.vmas_saved.fetch_add(
                outcome.vmas_before.saturating_sub(outcome.vmas_after) as u64,
                Ordering::Relaxed,
            );
        }
    }

    pub(crate) fn note_compaction_skipped(&mut self) {
        self.stats.compaction_skipped += 1;
        if let Some(m) = &self.maint_metrics {
            m.compaction_skipped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Move the bucket covering `slot` to `dst`: copy the page, repoint
    /// every covering directory slot, retire the source, and (optionally)
    /// record the per-slot identity assignment / update events. Returns
    /// the covering width.
    fn move_bucket(
        &mut self,
        slot: usize,
        dst: PageIdx,
        assignments: Option<&mut Vec<(usize, PageIdx)>>,
        emit_updates: bool,
    ) -> Result<usize, IndexError> {
        let g = self.dir.global_depth();
        let ptr = self.dir.get(slot);
        // SAFETY: live bucket slot (directory invariant).
        let l = unsafe { BucketRef::from_ptr(ptr, self.bucket_layout) }.local_depth();
        let range = Directory::covering_range(slot, g, l);
        debug_assert_eq!(range.start, slot, "cursor must sit on a range start");
        let src = self.pool.page_of_ptr(ptr)?;
        self.pool.relocate_page(src, dst)?;
        let dst_ptr = self.pool.page_ptr(dst);
        for s in range.clone() {
            self.dir.set(s, dst_ptr);
        }
        self.pool.retire_page(src)?;
        if let Some(out) = assignments {
            out.extend(range.clone().map(|s| (s, dst)));
        }
        if emit_updates && self.cfg.track_events {
            self.events
                .extend(range.clone().map(|s| DirEvent::SlotUpdated {
                    slot: s,
                    ppage: dst,
                }));
        }
        Ok(range.len())
    }

    /// Relocate **every** bucket into directory order in one pass and
    /// (with `track_events`) emit a single [`DirEvent::Rebuilt`] carrying
    /// the identity assignment. Sources are epoch-retired and reclaimed
    /// once reader pins drain; the vacated span is reused by the next
    /// pass. Any in-flight incremental plan is aborted first.
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot host the target run (view capacity). If
    /// some buckets moved before the failure, the directory is left fully
    /// consistent and a `Rebuilt` event with the *current* assignment is
    /// still emitted, so a shortcut can never legitimize stale slots.
    pub fn compact_full(&mut self) -> Result<CompactionOutcome, IndexError> {
        self.abort_compaction_plan();
        self.pool.reclaim_retired_pages();
        let slots = self.dir.slot_count();
        let vmas_before = self.layout_vmas()?;
        let n = self.bucket_count;
        let target = self.pool.alloc_run(n)?;
        let mut assignments: Vec<(usize, PageIdx)> = Vec::with_capacity(slots);
        let mut moved = 0usize;
        let mut cursor = 0usize;
        let result: Result<(), IndexError> = loop {
            if cursor >= slots {
                break Ok(());
            }
            match self.move_bucket(
                cursor,
                PageIdx(target.0 + moved),
                Some(&mut assignments),
                false,
            ) {
                Ok(cover) => {
                    cursor += cover;
                    moved += 1;
                }
                Err(e) => break Err(e),
            }
        };
        match result {
            Ok(()) => {
                debug_assert_eq!(moved, n, "covering ranges must partition the directory");
                let vmas_after = planned_vmas(slots, &assignments);
                if self.cfg.track_events {
                    self.events.push(DirEvent::Rebuilt { slots, assignments });
                }
                let outcome = CompactionOutcome {
                    pages_moved: moved,
                    vmas_before,
                    vmas_after,
                };
                self.note_compaction(outcome);
                Ok(outcome)
            }
            Err(e) => {
                // Free the part of the target run no bucket reached.
                if moved < n {
                    let _ = self.pool.free_run(PageIdx(target.0 + moved), n - moved);
                }
                // The moved prefix is live: publish the current (partly
                // compacted) truth so the shortcut rebuild reflects it.
                if self.cfg.track_events {
                    if let Ok(assignments) = self.directory_assignments() {
                        self.events.push(DirEvent::Rebuilt { slots, assignments });
                    }
                }
                Err(e)
            }
        }
    }

    /// Start an incremental compaction plan: pre-allocate the contiguous
    /// target run and reset the cursor. Buckets are then moved
    /// `background_moves` at a time by [`ExtendibleHash::compact_step`].
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot host the target run; nothing changes.
    pub fn start_compaction_plan(&mut self) -> Result<(), IndexError> {
        self.abort_compaction_plan();
        self.pool.reclaim_retired_pages();
        let vmas_before = self.layout_vmas()?;
        let total = self.bucket_count;
        let target = self.pool.alloc_run(total)?;
        self.plan = Some(CompactPlan {
            target,
            total,
            slots_at_start: self.dir.slot_count(),
            next_slot: 0,
            next_target: 0,
            vmas_before,
        });
        Ok(())
    }

    /// Advance the active plan by up to `budget` bucket moves, emitting
    /// one [`DirEvent::SlotUpdated`] per repointed slot (so the shortcut
    /// converges incrementally, without a stop-the-world rebuild). Returns
    /// the number of buckets moved; 0 when no plan is active. Completing
    /// the pass frees the unused target tail and reclaims drained retired
    /// pages.
    ///
    /// # Errors
    ///
    /// A failed move aborts the plan (the directory stays consistent and
    /// all emitted events remain valid) and surfaces the pool error.
    pub fn compact_step(&mut self, budget: usize) -> Result<usize, IndexError> {
        let Some(plan) = &self.plan else {
            return Ok(0);
        };
        if plan.slots_at_start != self.dir.slot_count() {
            // A doubling raced the plan (only possible if the caller
            // interleaves steps and inserts); drop it.
            self.abort_compaction_plan();
            return Ok(0);
        }
        let mut moved = 0usize;
        while moved < budget.max(1) {
            let Some(plan) = &self.plan else { break };
            let (slot, dst) = (plan.next_slot, PageIdx(plan.target.0 + plan.next_target));
            if slot >= plan.slots_at_start {
                break;
            }
            if plan.next_target >= plan.total {
                // Splits ahead of the cursor created more covering ranges
                // than the pre-allocated target run has pages; moving on
                // would write past the run into a live page. Abandon the
                // pass — the moved prefix stays valid and the next plan
                // is sized for the grown bucket count.
                self.abort_compaction_plan();
                return Ok(moved);
            }
            match self.move_bucket(slot, dst, None, true) {
                Ok(cover) => {
                    let plan = self.plan.as_mut().expect("checked above");
                    plan.next_slot += cover;
                    plan.next_target += 1;
                    moved += 1;
                }
                Err(e) => {
                    self.abort_compaction_plan();
                    self.note_compaction_skipped();
                    return Err(e);
                }
            }
        }
        self.stats.pages_moved += moved as u64;
        if let Some(m) = &self.maint_metrics {
            m.pages_moved.fetch_add(moved as u64, Ordering::Relaxed);
        }
        let done = self
            .plan
            .as_ref()
            .is_some_and(|p| p.next_slot >= p.slots_at_start);
        if done {
            let plan = self.plan.take().expect("checked above");
            if plan.next_target < plan.total {
                let _ = self.pool.free_run(
                    PageIdx(plan.target.0 + plan.next_target),
                    plan.total - plan.next_target,
                );
            }
            let outcome = CompactionOutcome {
                pages_moved: 0, // per-step accounting already happened
                vmas_before: plan.vmas_before,
                vmas_after: self.layout_vmas()?,
            };
            self.note_compaction(outcome);
        }
        self.pool.reclaim_retired_pages();
        Ok(moved)
    }

    /// Re-announce the current directory as a full rebuild without moving
    /// any page: pushes one [`DirEvent::Rebuilt`] carrying the current
    /// assignment. Shortcut-EH uses this to lift a budget suspension once
    /// splits have shrunk the layout's footprint below the budget — the
    /// pages are already well placed, only the mapper needs to hear about
    /// it again.
    ///
    /// # Errors
    ///
    /// Propagates [`ExtendibleHash::directory_assignments`] failures.
    pub fn emit_rebuilt_event(&mut self) -> Result<(), IndexError> {
        if self.cfg.track_events {
            let assignments = self.directory_assignments()?;
            self.events.push(DirEvent::Rebuilt {
                slots: self.dir.slot_count(),
                assignments,
            });
        }
        Ok(())
    }

    /// Drop the active plan, if any, returning its unused target pages to
    /// the pool. Already-moved buckets stay where they are (the directory
    /// is consistent after every move).
    pub fn abort_compaction_plan(&mut self) {
        if let Some(plan) = self.plan.take() {
            if plan.next_target < plan.total {
                let _ = self.pool.free_run(
                    PageIdx(plan.target.0 + plan.next_target),
                    plan.total - plan.next_target,
                );
            }
        }
    }

    /// Opportunistically free retired (relocated-away) pages whose reader
    /// pins have drained. Exposed for callers pacing their own compaction.
    pub fn reclaim_retired_pages(&mut self) -> usize {
        self.pool.reclaim_retired_pages()
    }

    /// The hash the directory addresses with: the key's multiplicative
    /// hash rotated left by [`EhConfig::hash_rot`] (0 unless this index
    /// is a shard — see the field's docs).
    #[inline(always)]
    pub fn dir_hash(&self, key: u64) -> u64 {
        mult_hash(key).rotate_left(self.cfg.hash_rot)
    }
}

impl Index for ExtendibleHash {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let h = self.dir_hash(key);
        loop {
            let bucket = self.bucket_for(h);
            match bucket.insert(key, value, self.max_entries) {
                InsertOutcome::Inserted => {
                    self.len += 1;
                    return Ok(());
                }
                InsertOutcome::Updated => return Ok(()),
                InsertOutcome::Full => self.split(h)?,
            }
        }
    }

    /// Shared-reference lookup. Because inserts require `&mut self`, Rust's
    /// aliasing rules guarantee no concurrent structural change while any
    /// `&self` lookup runs — this is the sound basis for parallel lookup
    /// phases (see [`crate::ShortcutEh`]).
    fn get(&self, key: u64) -> Option<u64> {
        self.bucket_for(self.dir_hash(key)).get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        let v = self.bucket_for(self.dir_hash(key)).remove(key);
        if v.is_some() {
            self.len -= 1;
        }
        Ok(v)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "EH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExtendibleHash {
        ExtendibleHash::try_new(EhConfig {
            pool: PoolConfig {
                initial_pages: 1,
                min_growth_pages: 8,
                view_capacity_pages: 1 << 16,
                ..PoolConfig::default()
            },
            ..EhConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn starts_with_one_bucket_depth_zero() {
        let eh = small();
        assert_eq!(eh.global_depth(), 0);
        assert_eq!(eh.dir_slots(), 1);
        assert_eq!(eh.bucket_count(), 1);
    }

    #[test]
    fn out_of_range_load_factor_is_a_typed_error() {
        for bad in [0.0, -0.5, 1.5] {
            assert!(
                matches!(
                    ExtendibleHash::try_new(EhConfig {
                        max_load_factor: bad,
                        ..EhConfig::default()
                    }),
                    Err(IndexError::Config { .. })
                ),
                "load factor {bad} accepted"
            );
        }
    }

    #[test]
    fn basic_roundtrip() {
        let mut eh = small();
        eh.insert(1, 10).unwrap();
        eh.insert(2, 20).unwrap();
        assert_eq!(eh.get(1), Some(10));
        assert_eq!(eh.get(2), Some(20));
        assert_eq!(eh.get(3), None);
        assert_eq!(eh.remove(1).unwrap(), Some(10));
        assert_eq!(eh.get(1), None);
        assert_eq!(eh.len(), 1);
    }

    #[test]
    fn update_preserves_len() {
        let mut eh = small();
        eh.insert(5, 1).unwrap();
        eh.insert(5, 2).unwrap();
        assert_eq!(eh.len(), 1);
        assert_eq!(eh.get(5), Some(2));
    }

    #[test]
    fn splits_and_doublings_preserve_entries() {
        let mut eh = small();
        let n = 20_000u64;
        for k in 0..n {
            eh.insert(k, k + 7).unwrap();
        }
        assert_eq!(eh.len(), n as usize);
        assert!(eh.stats().splits > 100);
        assert!(eh.stats().doublings > 3);
        for k in 0..n {
            assert_eq!(eh.get(k), Some(k + 7), "key {k}");
        }
        // Load factor is maintained across all buckets.
        let limit = eh.bucket_entry_limit();
        assert!(limit <= 88);
        assert!(eh.bucket_count() as f64 * limit as f64 >= n as f64);
    }

    #[test]
    fn directory_invariants_hold() {
        let mut eh = small();
        for k in 0..5_000u64 {
            eh.insert(k, k).unwrap();
        }
        let g = eh.global_depth();
        let mut seen = std::collections::HashMap::new();
        for s in 0..eh.dir_slots() {
            let ptr = eh.dir.get(s);
            assert!(!ptr.is_null());
            // SAFETY: directory invariant — live bucket page.
            let b = unsafe { BucketRef::from_ptr(ptr, eh.bucket_layout) };
            let l = b.local_depth();
            assert!(l <= g, "local depth exceeds global at slot {s}");
            // Exactly 2^(g-l) contiguous slots share this bucket, aligned
            // to that power of two.
            let cover = 1usize << (g - l);
            assert_eq!(s / cover, (s / cover * cover) / cover);
            seen.entry(ptr as usize).or_insert_with(Vec::new).push(s);
        }
        for (_, slots) in seen.iter() {
            // Covering slots are contiguous and a power of two long.
            let len = slots.len();
            assert!(len.is_power_of_two(), "cover size {len} not a power of 2");
            assert_eq!(slots[len - 1] - slots[0] + 1, len, "cover not contiguous");
        }
        assert_eq!(seen.len(), eh.bucket_count());
    }

    #[test]
    fn entries_live_in_their_prefix_bucket() {
        let mut eh = small();
        for k in 0..3_000u64 {
            eh.insert(k, k).unwrap();
        }
        let g = eh.global_depth();
        for s in 0..eh.dir_slots() {
            let ptr = eh.dir.get(s);
            // SAFETY: directory invariant.
            let b = unsafe { BucketRef::from_ptr(ptr, eh.bucket_layout) };
            let l = b.local_depth();
            b.for_each_entry(|k, _| {
                let h = mult_hash(k);
                let slot = dir_slot(h, g);
                // The entry's slot must be covered by this bucket.
                let cover = 1usize << (g - l);
                assert_eq!(slot / cover, s / cover, "entry {k} in wrong bucket");
            });
        }
    }

    #[test]
    fn events_track_splits_and_doublings() {
        let mut eh = ExtendibleHash::try_new(EhConfig {
            track_events: true,
            ..EhConfig::default()
        })
        .unwrap();
        for k in 0..1_000u64 {
            eh.insert(k, k).unwrap();
        }
        let events = eh.take_events();
        assert!(!events.is_empty());
        let doubles = events
            .iter()
            .filter(|e| matches!(e, DirEvent::Doubled { .. }))
            .count();
        let updates = events
            .iter()
            .filter(|e| matches!(e, DirEvent::SlotUpdated { .. }))
            .count();
        assert_eq!(doubles as u64, eh.stats().doublings);
        assert!(updates > 0);
        // After take_events, the buffer is empty.
        assert!(eh.take_events().is_empty());
        // The last Doubled event's assignment vector covers every slot of
        // the directory it announced.
        if let Some(DirEvent::Doubled { slots, assignments }) = events
            .iter()
            .rev()
            .find(|e| matches!(e, DirEvent::Doubled { .. }))
        {
            assert_eq!(assignments.len(), *slots);
            for (i, (s, _)) in assignments.iter().enumerate() {
                assert_eq!(i, *s);
            }
        } else {
            panic!("expected at least one Doubled event");
        }
    }

    #[test]
    fn no_events_when_disabled() {
        let mut eh = small();
        for k in 0..2_000u64 {
            eh.insert(k, k).unwrap();
        }
        assert!(eh.take_events().is_empty());
    }

    #[test]
    fn compact_full_sorts_layout_and_keeps_answers() {
        let mut eh = small();
        for k in 0..20_000u64 {
            eh.insert(k, k * 13).unwrap();
        }
        let before = eh.layout_vmas().unwrap();
        let ideal = eh.ideal_layout_vmas();
        // Split-order allocation scatters the layout far from directory
        // order.
        assert!(before > ideal * 4, "layout unexpectedly compact: {before}");

        let out = eh.compact_full().unwrap();
        assert_eq!(out.pages_moved, eh.bucket_count());
        assert_eq!(out.vmas_before, before);
        assert_eq!(out.vmas_after, ideal, "identity layout must hit the ideal");
        assert_eq!(eh.layout_vmas().unwrap(), ideal);
        assert_eq!(eh.stats().compactions, 1);
        assert_eq!(eh.stats().pages_moved as usize, out.pages_moved);

        // Every answer survives the relocation.
        for k in 0..20_000u64 {
            assert_eq!(eh.get(k), Some(k * 13), "key {k}");
        }
        // Sources were retired, and (no readers) a reclaim frees them for
        // reuse — the next pass can reuse the vacated span.
        eh.reclaim_retired_pages();
        assert_eq!(eh.pool.retired_page_count(), 0);
        let pages_before = eh.pool.file_pages();
        eh.compact_full().unwrap();
        assert_eq!(
            eh.pool.file_pages(),
            pages_before,
            "second pass grew the file"
        );
    }

    #[test]
    fn on_rebuild_compaction_keeps_directory_near_identity() {
        let mut eh = ExtendibleHash::try_new(EhConfig {
            pool: PoolConfig {
                initial_pages: 1,
                min_growth_pages: 8,
                view_capacity_pages: 1 << 16,
                ..PoolConfig::default()
            },
            track_events: true,
            compaction: shortcut_core::CompactionPolicy {
                on_rebuild: true,
                background_moves: 0,
                trigger_fraction: 0.25,
            },
            ..EhConfig::default()
        })
        .unwrap();
        let n = 20_000u64;
        for k in 0..n {
            // This doubles repeatedly with compaction inside the doubling
            // path — the split that triggered it must re-fetch its bucket
            // through the directory or it would drain the retired copy.
            eh.insert(k, !k).unwrap();
        }
        for k in 0..n {
            assert_eq!(eh.get(k), Some(!k), "key {k}");
        }
        assert!(eh.stats().doublings > 3);
        assert_eq!(eh.stats().compactions, eh.stats().doublings);

        let events = eh.take_events();
        let rebuilds: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                DirEvent::Rebuilt { slots, assignments } => Some((slots, assignments)),
                _ => None,
            })
            .collect();
        assert_eq!(rebuilds.len() as u64, eh.stats().doublings);
        assert!(
            !events.iter().any(|e| matches!(e, DirEvent::Doubled { .. })),
            "doublings must be announced as compacted rebuilds"
        );
        // The last rebuild's assignment is a full identity over the
        // directory at that time: sorted slots, monotone pages within
        // each covering run.
        let (slots, assignments) = rebuilds.last().unwrap();
        assert_eq!(assignments.len(), **slots);
        for (i, (s, _)) in assignments.iter().enumerate() {
            assert_eq!(i, *s);
        }
        let distinct: std::collections::BTreeSet<usize> =
            assignments.iter().map(|(_, p)| p.0).collect();
        let min = *distinct.iter().next().unwrap();
        let max = *distinct.iter().next_back().unwrap();
        assert_eq!(
            max - min + 1,
            distinct.len(),
            "compacted pages must be one contiguous run"
        );
        // Layout since the last doubling fragments only by the splits that
        // followed it: each breaks at most 3 boundaries on top of the
        // irreducible fan-in floor (`ideal = slots − buckets + 1`).
        let layout = eh.layout_vmas().unwrap();
        let bound = eh.ideal_layout_vmas() + 3 * eh.splits_since_compaction() as usize;
        assert!(
            layout <= bound,
            "{layout} VMAs > ideal {} + 3×{} splits",
            eh.ideal_layout_vmas(),
            eh.splits_since_compaction()
        );
    }

    #[test]
    fn incremental_plan_converges_and_frees_tail() {
        let mut eh = small();
        for k in 0..10_000u64 {
            eh.insert(k, k + 1).unwrap();
        }
        let before = eh.layout_vmas().unwrap();
        eh.start_compaction_plan().unwrap();
        assert!(eh.compaction_plan_active());
        let mut steps = 0;
        while eh.compaction_plan_active() {
            let moved = eh.compact_step(7).unwrap();
            assert!(moved > 0 || !eh.compaction_plan_active());
            steps += 1;
            assert!(steps < 100_000, "plan never converged");
        }
        assert_eq!(eh.stats().compactions, 1);
        assert_eq!(eh.stats().pages_moved as usize, eh.bucket_count());
        assert_eq!(eh.layout_vmas().unwrap(), eh.ideal_layout_vmas());
        assert!(eh.layout_vmas().unwrap() < before);
        for k in 0..10_000u64 {
            assert_eq!(eh.get(k), Some(k + 1), "key {k}");
        }
        // Inserting on (splitting) after the pass stays correct.
        for k in 10_000..12_000u64 {
            eh.insert(k, k + 1).unwrap();
        }
        for k in 0..12_000u64 {
            assert_eq!(eh.get(k), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn splits_during_plan_cannot_overrun_the_target_run() {
        // Splits ahead of the cursor create more covering ranges than the
        // plan pre-allocated target pages; the step must abandon the pass
        // rather than relocate into a page beyond the run (which is
        // typically a freshly split *live* bucket — moving onto it would
        // silently clobber its entries).
        let mut eh = small();
        let mut k = 0u64;
        for _ in 0..10_000u64 {
            eh.insert(k, k ^ 7).unwrap();
            k += 1;
        }
        // Start the plan right after a doubling: the next doubling (which
        // would abort the plan before the overrun can occur) is then a
        // full depth-generation away, leaving maximal room for splits to
        // outgrow the plan's pre-sized target run.
        let doublings = eh.stats().doublings;
        while eh.stats().doublings == doublings {
            eh.insert(k, k ^ 7).unwrap();
            k += 1;
        }
        eh.start_compaction_plan().unwrap();
        // Drain the free queue so split allocations land in freshly grown
        // pages immediately *past* the target run — exactly the dst an
        // unguarded overrun would relocate onto.
        let file_pages = eh.pool.file_pages();
        while eh.pool.file_pages() == file_pages {
            eh.pool.alloc_page().unwrap();
        }
        let mut rounds = 0;
        while eh.compaction_plan_active() {
            for _ in 0..50 {
                eh.insert(k, k ^ 7).unwrap();
                k += 1;
            }
            eh.compact_step(2).unwrap();
            rounds += 1;
            assert!(rounds < 1_000_000, "plan neither finished nor aborted");
        }
        // Every entry — including those inserted into buckets that split
        // while the plan was running — survives intact.
        for x in 0..k {
            assert_eq!(eh.get(x), Some(x ^ 7), "key {x}");
        }
        eh.reclaim_retired_pages();
        assert_eq!(eh.pool.retired_page_count(), 0);
    }

    #[test]
    fn doubling_aborts_incremental_plan() {
        let mut eh = small();
        for k in 0..5_000u64 {
            eh.insert(k, k).unwrap();
        }
        eh.start_compaction_plan().unwrap();
        eh.compact_step(3).unwrap();
        let allocated = eh.pool.allocated_pages();
        // Force growth through a doubling.
        let doublings = eh.stats().doublings;
        let mut k = 5_000u64;
        while eh.stats().doublings == doublings {
            eh.insert(k, k).unwrap();
            k += 1;
        }
        assert!(!eh.compaction_plan_active(), "doubling must abort the plan");
        // The aborted plan's unclaimed target pages were returned (modulo
        // pages the new splits allocated meanwhile, and retired sources
        // still awaiting reclaim).
        eh.reclaim_retired_pages();
        assert!(eh.pool.allocated_pages() < allocated + (k - 5_000) as usize);
        for x in 0..k {
            assert_eq!(eh.get(x), Some(x), "key {x}");
        }
    }

    #[test]
    fn larger_slots_grow_shallower_directories() {
        // Same keys, 16 KB slots: ~4x the bucket capacity must produce a
        // directory at least two levels shallower than the 4 KB run, with
        // every answer intact.
        let build = |k: u32| {
            ExtendibleHash::try_new(EhConfig {
                pool: PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: 8,
                    view_capacity_pages: 1 << 16,
                    slot_layout: SlotLayout::new(k).unwrap(),
                    ..PoolConfig::default()
                },
                ..EhConfig::default()
            })
            .unwrap()
        };
        let n = 30_000u64;
        let mut base = build(0);
        let mut big = build(2);
        assert!(big.bucket_layout().capacity() > 4 * base.bucket_layout().capacity() - 64);
        for k in 0..n {
            base.insert(k, k ^ 42).unwrap();
            big.insert(k, k ^ 42).unwrap();
        }
        for k in 0..n {
            assert_eq!(big.get(k), Some(k ^ 42), "key {k}");
        }
        assert!(
            big.global_depth() + 2 <= base.global_depth(),
            "16 KB slots: depth {} vs {} at 4 KB",
            big.global_depth(),
            base.global_depth()
        );
        assert!(big.stats().splits * 3 < base.stats().splits);
        // The layout estimates stay slot-denominated: compacting a k=2
        // index hits the same `slots − buckets + 1` closed form.
        let out = big.compact_full().unwrap();
        assert_eq!(out.vmas_after, big.ideal_layout_vmas());
        for k in 0..n {
            assert_eq!(big.get(k), Some(k ^ 42), "post-compaction key {k}");
        }
    }

    #[test]
    fn remove_then_reinsert_across_splits() {
        let mut eh = small();
        for k in 0..2_000u64 {
            eh.insert(k, k).unwrap();
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.remove(k).unwrap(), Some(k));
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.get(k), None);
        }
        for k in 0..1_000u64 {
            eh.insert(k, k * 2).unwrap();
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.get(k), Some(k * 2));
        }
        assert_eq!(eh.len(), 2_000);
    }
}
