//! **EH**: classical extendible hashing (paper §4, Figure 6).
//!
//! A directory of `2^global_depth` slots, indexed by the most significant
//! hash bits, points to 4 KB buckets. Each bucket knows its *local depth*
//! `l ≤ g`: exactly `2^(g−l)` contiguous directory slots reference it. An
//! overflowing bucket splits (local depth +1); if its local depth already
//! equals the global depth, the directory doubles first.
//!
//! Buckets are allocated from a [`shortcut_rewire::PagePool`] so that a
//! shortcut directory can later be rewired straight to their physical
//! pages — this is the prerequisite the paper states in §2.1.

mod directory;

pub use directory::Directory;

use crate::bucket::{BucketRef, InsertOutcome, BUCKET_CAPACITY};
use crate::error::IndexError;
use crate::hash::{dir_slot, mult_hash, split_bit};
use crate::stats::IndexStats;
use crate::traits::Index;
use shortcut_rewire::{PageIdx, PagePool, PoolConfig, PoolHandle};

/// Directory-modifying events, emitted (when enabled) for the asynchronous
/// shortcut maintenance of Shortcut-EH.
#[derive(Debug, Clone)]
pub enum DirEvent {
    /// A split redirected `slot` to the bucket in pool page `ppage`.
    SlotUpdated {
        /// Directory slot that changed.
        slot: usize,
        /// Pool page of the bucket it now references.
        ppage: PageIdx,
    },
    /// The directory doubled; a full rebuild of any shortcut is required.
    Doubled {
        /// New slot count (`2^global_depth`).
        slots: usize,
        /// Complete `(slot, pool page)` assignment, sorted by slot.
        assignments: Vec<(usize, PageIdx)>,
    },
}

/// EH tuning.
#[derive(Debug, Clone)]
pub struct EhConfig {
    /// Maximum bucket load factor before splitting (paper: 0.35).
    pub max_load_factor: f64,
    /// Page pool configuration (bucket storage).
    pub pool: PoolConfig,
    /// Emit [`DirEvent`]s (enabled by Shortcut-EH, off for plain EH).
    pub track_events: bool,
    /// Hard cap on the global depth; exceeding it panics with a clear
    /// message instead of exhausting memory (2^28 slots = 2 GB directory).
    pub max_global_depth: u32,
}

impl Default for EhConfig {
    fn default() -> Self {
        EhConfig {
            max_load_factor: 0.35,
            pool: PoolConfig::default(),
            track_events: false,
            max_global_depth: 28,
        }
    }
}

/// The EH baseline (and the synchronous half of Shortcut-EH).
pub struct ExtendibleHash {
    pool: PagePool,
    dir: Directory,
    bucket_count: usize,
    len: usize,
    max_entries: usize,
    cfg: EhConfig,
    stats: IndexStats,
    events: Vec<DirEvent>,
}

impl ExtendibleHash {
    /// Build with custom configuration; starts with one empty bucket (the
    /// paper's "effective space of only 4 KB").
    ///
    /// # Errors
    ///
    /// Rejects a load factor outside `(0, 1]` or too small to hold a
    /// single entry, and propagates pool creation / initial-bucket
    /// allocation failures (memfd, `mmap`, reservation sizing) as
    /// [`IndexError::Pool`].
    pub fn try_new(cfg: EhConfig) -> Result<Self, IndexError> {
        if !(cfg.max_load_factor > 0.0 && cfg.max_load_factor <= 1.0) {
            return Err(IndexError::config("max_load_factor must be in (0, 1]"));
        }
        let max_entries = ((BUCKET_CAPACITY as f64) * cfg.max_load_factor).floor() as usize;
        if max_entries < 1 {
            return Err(IndexError::config("load factor too small for any entry"));
        }
        let mut pool = PagePool::new(cfg.pool.clone())?;
        let first = pool.alloc_page()?;
        let ptr = pool.page_ptr(first);
        // SAFETY: freshly allocated, exclusively owned 4 KB pool page.
        unsafe { BucketRef::from_ptr(ptr) }.init(0);
        let mut dir = Directory::new();
        dir.set_all(ptr);
        Ok(ExtendibleHash {
            pool,
            dir,
            bucket_count: 1,
            len: 0,
            max_entries,
            cfg,
            stats: IndexStats::default(),
            events: Vec::new(),
        })
    }

    /// Build with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError::Pool`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(EhConfig::default())
    }

    /// Global depth of the directory.
    pub fn global_depth(&self) -> u32 {
        self.dir.global_depth()
    }

    /// Number of directory slots (`2^global_depth`).
    pub fn dir_slots(&self) -> usize {
        self.dir.slot_count()
    }

    /// Number of distinct buckets.
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    /// Average directory fan-in (`slots / buckets`), the §3.2 routing input.
    pub fn avg_fanin(&self) -> f64 {
        self.dir.slot_count() as f64 / self.bucket_count as f64
    }

    /// Structural statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Operation counters of the backing page pool.
    pub fn pool_stats(&self) -> shortcut_rewire::StatsSnapshot {
        self.pool.stats()
    }

    /// VMA budget and retirement counters of the backing page pool.
    pub fn vma_stats(&self) -> shortcut_rewire::VmaSnapshot {
        self.pool.vma_snapshot()
    }

    /// Maximum entries a bucket may hold before splitting.
    pub fn bucket_entry_limit(&self) -> usize {
        self.max_entries
    }

    /// A shareable handle to the bucket pool (for shortcut maintenance).
    pub fn pool_handle(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// Drain the directory events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<DirEvent> {
        std::mem::take(&mut self.events)
    }

    /// The bucket a hash currently routes to.
    fn bucket_for(&self, hash: u64) -> BucketRef {
        let ptr = self.dir.get(dir_slot(hash, self.dir.global_depth()));
        debug_assert!(!ptr.is_null());
        // SAFETY: directory slots always point at live pool bucket pages.
        unsafe { BucketRef::from_ptr(ptr) }
    }

    /// Full `(slot, pool page)` assignment of the current directory.
    ///
    /// # Errors
    ///
    /// Fails only if a directory slot points outside the pool view — an
    /// internal invariant violation surfaced as [`IndexError::Pool`]
    /// rather than a panic on the write path.
    pub fn directory_assignments(&self) -> Result<Vec<(usize, PageIdx)>, IndexError> {
        (0..self.dir.slot_count())
            .map(|s| {
                let ptr = self.dir.get(s);
                let page = self.pool.page_of_ptr(ptr)?;
                Ok((s, page))
            })
            .collect()
    }

    fn double_directory(&mut self) -> Result<(), IndexError> {
        if self.dir.global_depth() >= self.cfg.max_global_depth {
            return Err(IndexError::DepthLimit {
                max_global_depth: self.cfg.max_global_depth,
            });
        }
        self.dir.double();
        self.stats.doublings += 1;
        if self.cfg.track_events {
            let assignments = self.directory_assignments()?;
            self.events.push(DirEvent::Doubled {
                slots: self.dir.slot_count(),
                assignments,
            });
        }
        Ok(())
    }

    /// Split the bucket the hash routes to. One split per call; the insert
    /// loop retries (a skewed bucket may need several rounds).
    ///
    /// On failure (pool exhausted, depth cap) no entry has moved yet — the
    /// overflowing bucket is split only after the fresh page is in hand —
    /// so the index stays fully readable.
    fn split(&mut self, hash: u64) -> Result<(), IndexError> {
        let g = self.dir.global_depth();
        let slot = dir_slot(hash, g);
        let old_ptr = self.dir.get(slot);
        // SAFETY: live bucket page (directory invariant).
        let old = unsafe { BucketRef::from_ptr(old_ptr) };
        let l = old.local_depth();

        if l == g {
            self.double_directory()?;
        }
        let g = self.dir.global_depth();
        let slot = dir_slot(hash, g);
        let l = old.local_depth();
        debug_assert!(l < g);

        // Covering range of the old bucket: 2^(g-l) contiguous slots.
        let range = Directory::covering_range(slot, g, l);
        let half = range.len() / 2;

        // Fresh bucket page for the upper half.
        let new_page = self.pool.alloc_page()?;
        let new_ptr = self.pool.page_ptr(new_page);
        // SAFETY: freshly allocated pool page, exclusively ours.
        let new = unsafe { BucketRef::from_ptr(new_ptr) };
        new.init(l + 1);

        // Redistribute: the (l+1)-th hash bit decides the side.
        let entries = old.drain_entries();
        old.init(l + 1);
        for (k, v) in entries {
            let h = mult_hash(k);
            let target = if split_bit(h, l) { new } else { old };
            let r = target.insert(k, v, BUCKET_CAPACITY);
            debug_assert_ne!(r, InsertOutcome::Full, "split lost an entry");
        }

        // Redirect the upper half of the covering range.
        let first_new = range.start + half;
        for s in first_new..range.end {
            self.dir.set(s, new_ptr);
            if self.cfg.track_events {
                self.events.push(DirEvent::SlotUpdated {
                    slot: s,
                    ppage: new_page,
                });
            }
        }
        self.bucket_count += 1;
        self.stats.splits += 1;
        Ok(())
    }
}

impl Index for ExtendibleHash {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let h = mult_hash(key);
        loop {
            let bucket = self.bucket_for(h);
            match bucket.insert(key, value, self.max_entries) {
                InsertOutcome::Inserted => {
                    self.len += 1;
                    return Ok(());
                }
                InsertOutcome::Updated => return Ok(()),
                InsertOutcome::Full => self.split(h)?,
            }
        }
    }

    /// Shared-reference lookup. Because inserts require `&mut self`, Rust's
    /// aliasing rules guarantee no concurrent structural change while any
    /// `&self` lookup runs — this is the sound basis for parallel lookup
    /// phases (see [`crate::ShortcutEh`]).
    fn get(&self, key: u64) -> Option<u64> {
        self.bucket_for(mult_hash(key)).get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        let v = self.bucket_for(mult_hash(key)).remove(key);
        if v.is_some() {
            self.len -= 1;
        }
        Ok(v)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "EH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExtendibleHash {
        ExtendibleHash::try_new(EhConfig {
            pool: PoolConfig {
                initial_pages: 1,
                min_growth_pages: 8,
                view_capacity_pages: 1 << 16,
                ..PoolConfig::default()
            },
            ..EhConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn starts_with_one_bucket_depth_zero() {
        let eh = small();
        assert_eq!(eh.global_depth(), 0);
        assert_eq!(eh.dir_slots(), 1);
        assert_eq!(eh.bucket_count(), 1);
    }

    #[test]
    fn out_of_range_load_factor_is_a_typed_error() {
        for bad in [0.0, -0.5, 1.5] {
            assert!(
                matches!(
                    ExtendibleHash::try_new(EhConfig {
                        max_load_factor: bad,
                        ..EhConfig::default()
                    }),
                    Err(IndexError::Config { .. })
                ),
                "load factor {bad} accepted"
            );
        }
    }

    #[test]
    fn basic_roundtrip() {
        let mut eh = small();
        eh.insert(1, 10).unwrap();
        eh.insert(2, 20).unwrap();
        assert_eq!(eh.get(1), Some(10));
        assert_eq!(eh.get(2), Some(20));
        assert_eq!(eh.get(3), None);
        assert_eq!(eh.remove(1).unwrap(), Some(10));
        assert_eq!(eh.get(1), None);
        assert_eq!(eh.len(), 1);
    }

    #[test]
    fn update_preserves_len() {
        let mut eh = small();
        eh.insert(5, 1).unwrap();
        eh.insert(5, 2).unwrap();
        assert_eq!(eh.len(), 1);
        assert_eq!(eh.get(5), Some(2));
    }

    #[test]
    fn splits_and_doublings_preserve_entries() {
        let mut eh = small();
        let n = 20_000u64;
        for k in 0..n {
            eh.insert(k, k + 7).unwrap();
        }
        assert_eq!(eh.len(), n as usize);
        assert!(eh.stats().splits > 100);
        assert!(eh.stats().doublings > 3);
        for k in 0..n {
            assert_eq!(eh.get(k), Some(k + 7), "key {k}");
        }
        // Load factor is maintained across all buckets.
        let limit = eh.bucket_entry_limit();
        assert!(limit <= 88);
        assert!(eh.bucket_count() as f64 * limit as f64 >= n as f64);
    }

    #[test]
    fn directory_invariants_hold() {
        let mut eh = small();
        for k in 0..5_000u64 {
            eh.insert(k, k).unwrap();
        }
        let g = eh.global_depth();
        let mut seen = std::collections::HashMap::new();
        for s in 0..eh.dir_slots() {
            let ptr = eh.dir.get(s);
            assert!(!ptr.is_null());
            // SAFETY: directory invariant — live bucket page.
            let b = unsafe { BucketRef::from_ptr(ptr) };
            let l = b.local_depth();
            assert!(l <= g, "local depth exceeds global at slot {s}");
            // Exactly 2^(g-l) contiguous slots share this bucket, aligned
            // to that power of two.
            let cover = 1usize << (g - l);
            assert_eq!(s / cover, (s / cover * cover) / cover);
            seen.entry(ptr as usize).or_insert_with(Vec::new).push(s);
        }
        for (_, slots) in seen.iter() {
            // Covering slots are contiguous and a power of two long.
            let len = slots.len();
            assert!(len.is_power_of_two(), "cover size {len} not a power of 2");
            assert_eq!(slots[len - 1] - slots[0] + 1, len, "cover not contiguous");
        }
        assert_eq!(seen.len(), eh.bucket_count());
    }

    #[test]
    fn entries_live_in_their_prefix_bucket() {
        let mut eh = small();
        for k in 0..3_000u64 {
            eh.insert(k, k).unwrap();
        }
        let g = eh.global_depth();
        for s in 0..eh.dir_slots() {
            let ptr = eh.dir.get(s);
            // SAFETY: directory invariant.
            let b = unsafe { BucketRef::from_ptr(ptr) };
            let l = b.local_depth();
            b.for_each_entry(|k, _| {
                let h = mult_hash(k);
                let slot = dir_slot(h, g);
                // The entry's slot must be covered by this bucket.
                let cover = 1usize << (g - l);
                assert_eq!(slot / cover, s / cover, "entry {k} in wrong bucket");
            });
        }
    }

    #[test]
    fn events_track_splits_and_doublings() {
        let mut eh = ExtendibleHash::try_new(EhConfig {
            track_events: true,
            ..EhConfig::default()
        })
        .unwrap();
        for k in 0..1_000u64 {
            eh.insert(k, k).unwrap();
        }
        let events = eh.take_events();
        assert!(!events.is_empty());
        let doubles = events
            .iter()
            .filter(|e| matches!(e, DirEvent::Doubled { .. }))
            .count();
        let updates = events
            .iter()
            .filter(|e| matches!(e, DirEvent::SlotUpdated { .. }))
            .count();
        assert_eq!(doubles as u64, eh.stats().doublings);
        assert!(updates > 0);
        // After take_events, the buffer is empty.
        assert!(eh.take_events().is_empty());
        // The last Doubled event's assignment vector covers every slot of
        // the directory it announced.
        if let Some(DirEvent::Doubled { slots, assignments }) = events
            .iter()
            .rev()
            .find(|e| matches!(e, DirEvent::Doubled { .. }))
        {
            assert_eq!(assignments.len(), *slots);
            for (i, (s, _)) in assignments.iter().enumerate() {
                assert_eq!(i, *s);
            }
        } else {
            panic!("expected at least one Doubled event");
        }
    }

    #[test]
    fn no_events_when_disabled() {
        let mut eh = small();
        for k in 0..2_000u64 {
            eh.insert(k, k).unwrap();
        }
        assert!(eh.take_events().is_empty());
    }

    #[test]
    fn remove_then_reinsert_across_splits() {
        let mut eh = small();
        for k in 0..2_000u64 {
            eh.insert(k, k).unwrap();
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.remove(k).unwrap(), Some(k));
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.get(k), None);
        }
        for k in 0..1_000u64 {
            eh.insert(k, k * 2).unwrap();
        }
        for k in 0..1_000u64 {
            assert_eq!(eh.get(k), Some(k * 2));
        }
        assert_eq!(eh.len(), 2_000);
    }
}
