//! The extendible-hashing directory: a wide traditional inner node plus the
//! global depth, with the doubling and covering-range arithmetic.

use shortcut_core::TraditionalNode;
use std::ops::Range;

/// Directory of `2^global_depth` bucket pointers.
pub struct Directory {
    node: TraditionalNode,
    global_depth: u32,
}

impl Directory {
    /// A depth-0 directory with a single slot.
    pub fn new() -> Self {
        Directory {
            node: TraditionalNode::new(1),
            global_depth: 0,
        }
    }

    /// Current global depth.
    #[inline]
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// `2^global_depth`.
    #[inline]
    pub fn slot_count(&self) -> usize {
        1usize << self.global_depth
    }

    /// Pointer stored in `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> *mut u8 {
        self.node.get(slot)
    }

    /// Store `ptr` in `slot`.
    #[inline]
    pub fn set(&mut self, slot: usize, ptr: *mut u8) {
        self.node.set_slot(slot, ptr);
    }

    /// Point every slot at `ptr` (initialization with bucket 0).
    pub fn set_all(&mut self, ptr: *mut u8) {
        for s in 0..self.slot_count() {
            self.node.set_slot(s, ptr);
        }
    }

    /// Double the directory: slot `i` of the new directory inherits the
    /// pointer of old slot `i/2` (Figure 6b).
    pub fn double(&mut self) {
        self.node = self.node.doubled();
        self.global_depth += 1;
    }

    /// The contiguous range of slots covered by the bucket that `slot`
    /// points to, given global depth `g` and the bucket's local depth `l`:
    /// `2^(g-l)` slots aligned at that size.
    pub fn covering_range(slot: usize, g: u32, l: u32) -> Range<usize> {
        debug_assert!(l <= g);
        let cover = 1usize << (g - l);
        let first = slot / cover * cover;
        first..first + cover
    }
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_one_slot() {
        let d = Directory::new();
        assert_eq!(d.global_depth(), 0);
        assert_eq!(d.slot_count(), 1);
        assert!(d.get(0).is_null());
    }

    #[test]
    fn doubling_replicates() {
        let mut d = Directory::new();
        let a = 0x8000 as *mut u8;
        d.set_all(a);
        d.double();
        assert_eq!(d.global_depth(), 1);
        assert_eq!(d.slot_count(), 2);
        assert_eq!(d.get(0), a);
        assert_eq!(d.get(1), a);
        let b = 0x2000 as *mut u8;
        d.set(1, b);
        d.double();
        assert_eq!(d.get(0), a);
        assert_eq!(d.get(1), a);
        assert_eq!(d.get(2), b);
        assert_eq!(d.get(3), b);
    }

    #[test]
    fn covering_range_math() {
        // g=3 (8 slots), bucket with l=1 covers 4 aligned slots.
        assert_eq!(Directory::covering_range(0, 3, 1), 0..4);
        assert_eq!(Directory::covering_range(3, 3, 1), 0..4);
        assert_eq!(Directory::covering_range(4, 3, 1), 4..8);
        assert_eq!(Directory::covering_range(7, 3, 1), 4..8);
        // l == g: exactly one slot.
        assert_eq!(Directory::covering_range(5, 3, 3), 5..6);
        // l = 0 covers everything.
        assert_eq!(Directory::covering_range(6, 3, 0), 0..8);
    }
}
