//! **HT**: a single open-addressing / linear-probing hash table that
//! doubles and fully rehashes when the load factor is exceeded.
//!
//! This is the paper's "best lookups, staircase inserts" baseline: the
//! occasional full rehash makes the accumulated-insert curve jump (Figure
//! 7a), while lookups enjoy a single flat probe sequence (Figure 7b).

use crate::error::IndexError;
use crate::hash::bucket_slot_hash;
use crate::stats::IndexStats;
use crate::traits::Index;

/// HT tuning.
#[derive(Debug, Clone, Copy)]
pub struct HtConfig {
    /// Initial capacity in slots (power of two). The paper starts all
    /// resizable schemes at an effective 4 KB = 256 slots of 16 B.
    pub initial_capacity: usize,
    /// Maximum load factor before doubling (paper: 0.35).
    pub max_load_factor: f64,
}

impl Default for HtConfig {
    fn default() -> Self {
        HtConfig {
            initial_capacity: 256,
            max_load_factor: 0.35,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Occupied,
    Tombstone,
}

struct Table {
    keys: Vec<u64>,
    values: Vec<u64>,
    states: Vec<SlotState>,
    mask: usize,
    live: usize,
    used: usize, // live + tombstones, drives resize
}

impl Table {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Table {
            keys: vec![0; capacity],
            values: vec![0; capacity],
            states: vec![SlotState::Empty; capacity],
            mask: capacity - 1,
            live: 0,
            used: 0,
        }
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn start_slot(&self, key: u64) -> usize {
        (bucket_slot_hash(key) as usize) & self.mask
    }

    /// Insert without resize. Returns `true` if a new entry was created.
    fn insert(&mut self, key: u64, value: u64) -> bool {
        let mut slot = self.start_slot(key);
        let mut first_free = None;
        loop {
            match self.states[slot] {
                SlotState::Occupied => {
                    if self.keys[slot] == key {
                        self.values[slot] = value;
                        return false;
                    }
                }
                SlotState::Tombstone => {
                    if first_free.is_none() {
                        first_free = Some(slot);
                    }
                }
                SlotState::Empty => {
                    let target = first_free.unwrap_or(slot);
                    let reused_tombstone = self.states[target] == SlotState::Tombstone;
                    self.keys[target] = key;
                    self.values[target] = value;
                    self.states[target] = SlotState::Occupied;
                    self.live += 1;
                    if !reused_tombstone {
                        self.used += 1;
                    }
                    return true;
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mut slot = self.start_slot(key);
        loop {
            match self.states[slot] {
                SlotState::Occupied => {
                    if self.keys[slot] == key {
                        return Some(self.values[slot]);
                    }
                }
                SlotState::Empty => return None,
                SlotState::Tombstone => {}
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let mut slot = self.start_slot(key);
        loop {
            match self.states[slot] {
                SlotState::Occupied => {
                    if self.keys[slot] == key {
                        self.states[slot] = SlotState::Tombstone;
                        self.live -= 1;
                        return Some(self.values[slot]);
                    }
                }
                SlotState::Empty => return None,
                SlotState::Tombstone => {}
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn iter_live(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SlotState::Occupied)
            .map(|(i, _)| (self.keys[i], self.values[i]))
    }
}

/// The HT baseline. See module docs.
pub struct HashTable {
    table: Table,
    cfg: HtConfig,
    stats: IndexStats,
}

impl HashTable {
    /// Build with custom configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero capacity or a load factor outside `(0, 1]`.
    pub fn try_new(cfg: HtConfig) -> Result<Self, IndexError> {
        if cfg.initial_capacity == 0 {
            return Err(IndexError::config("initial_capacity must be > 0"));
        }
        if !(cfg.max_load_factor > 0.0 && cfg.max_load_factor <= 1.0) {
            return Err(IndexError::config("max_load_factor must be in (0, 1]"));
        }
        Ok(HashTable {
            table: Table::new(cfg.initial_capacity.next_power_of_two()),
            cfg,
            stats: IndexStats::default(),
        })
    }

    /// Build with the paper's defaults (256 slots, load factor 0.35).
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration; fallible for signature
    /// uniformity with the pool-backed schemes.
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(HtConfig::default())
    }

    /// Current capacity in slots.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Structural statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    fn maybe_grow(&mut self) {
        let max = (self.table.capacity() as f64 * self.cfg.max_load_factor) as usize;
        if self.table.used < max {
            return;
        }
        // Allocate a table of 2n and rehash all entries over in one go.
        let mut bigger = Table::new(self.table.capacity() * 2);
        for (k, v) in self.table.iter_live() {
            bigger.insert(k, v);
        }
        self.table = bigger;
        self.stats.full_rehashes += 1;
    }
}

impl Index for HashTable {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        self.maybe_grow();
        self.table.insert(key, value);
        Ok(())
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.table.get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self.table.remove(key))
    }

    fn len(&self) -> usize {
        self.table.live
    }

    fn name(&self) -> &'static str {
        "HT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = HashTable::with_defaults().unwrap();
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.get(3), None);
        assert_eq!(t.remove(1).unwrap(), Some(10));
        assert_eq!(t.get(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_does_not_grow_len() {
        let mut t = HashTable::with_defaults().unwrap();
        t.insert(5, 1).unwrap();
        t.insert(5, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(2));
    }

    #[test]
    fn bad_config_is_a_typed_error() {
        assert!(matches!(
            HashTable::try_new(HtConfig {
                initial_capacity: 0,
                max_load_factor: 0.35,
            }),
            Err(IndexError::Config { .. })
        ));
        assert!(matches!(
            HashTable::try_new(HtConfig {
                initial_capacity: 16,
                max_load_factor: 0.0,
            }),
            Err(IndexError::Config { .. })
        ));
    }

    #[test]
    fn grows_and_keeps_everything() {
        let mut t = HashTable::try_new(HtConfig {
            initial_capacity: 16,
            max_load_factor: 0.35,
        })
        .unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k * 3).unwrap();
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.stats().full_rehashes > 5);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k), Some(k * 3), "key {k}");
        }
        // Load factor invariant holds.
        assert!((t.len() as f64) <= 0.35 * t.capacity() as f64 + 1.0);
    }

    #[test]
    fn tombstones_are_reused() {
        let mut t = HashTable::with_defaults().unwrap();
        for k in 0..50u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..50u64 {
            t.remove(k).unwrap();
        }
        let rehashes_before = t.stats().full_rehashes;
        for k in 100..150u64 {
            t.insert(k, k).unwrap();
        }
        for k in 100..150u64 {
            assert_eq!(t.get(k), Some(k));
        }
        let _ = rehashes_before; // growth policy may or may not trigger; correctness is what matters
    }

    #[test]
    fn key_zero_supported() {
        let mut t = HashTable::with_defaults().unwrap();
        t.insert(0, 42).unwrap();
        assert_eq!(t.get(0), Some(42));
        assert_eq!(t.remove(0).unwrap(), Some(42));
        assert_eq!(t.get(0), None);
    }
}
