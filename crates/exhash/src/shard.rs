//! Hash-partitioned sharding over [`ShortcutEh`].
//!
//! [`ShardedIndex`] owns `N = 2^s` independent Shortcut-EH shards — each
//! with its own page pool, mapper thread, retirement list, and compaction
//! policy — and routes every key by the **top `s` bits** of its
//! multiplicative hash ([`mult_hash`]). Each shard's directory then hashes
//! with the rotation `hash_rot = s` ([`crate::EhConfig::hash_rot`]), so it
//! consumes the *next* bits down and keeps exactly the depth semantics of
//! a standalone index: an `s`-bit route plus a depth-`g` shard directory
//! addresses the same `s + g` hash bits a single depth-`(s + g)` directory
//! would, without every shard burning `s` constant levels.
//!
//! Two write disciplines coexist:
//!
//! * **Exclusive** — [`ShardedIndex`] implements [`Index`], with writes
//!   through `&mut self` exactly like a single shard. No locks are
//!   contended (`&mut` proves exclusivity; the per-shard `RwLock`s are
//!   accessed via `get_mut`).
//! * **Shared** — [`ShardedIndex::insert_shared`] /
//!   [`ShardedIndex::remove_shared`] / [`ShardedIndex::insert_batch_shared`]
//!   take `&self` and a per-shard **write lock**, so one writer thread per
//!   shard can run concurrently with each other and with any number of
//!   lock-free… rather, read-locked readers. A single shard's writes are
//!   still serialized (Shortcut-EH is single-writer by construction); the
//!   sharding is what buys write parallelism.
//!
//! Shards opted into the same [`shortcut_rewire::VmaBudget`] should set
//! [`shortcut_rewire::PoolConfig::fair_share`] (the constructor here does
//! it automatically for `s > 0`): each shard may then exceed its even
//! share of the budget only while every sibling's unfilled share stays
//! spare, so one hot shard's deep directory can never suspend the others'
//! rebuilds.

use crate::eh::CompactionOutcome;
use crate::error::IndexError;
use crate::hash::{dir_slot, mult_hash};
use crate::shortcut_eh::{ShortcutEh, ShortcutEhConfig};
use crate::stats::IndexStats;
use crate::traits::Index;
use parking_lot::RwLock;
use std::time::{Duration, Instant};

/// Hard cap on `shard_bits`: 2^8 = 256 shards is already far past any
/// plausible core count, and each shard costs a mapper thread + pool.
pub const MAX_SHARD_BITS: u32 = 8;

/// `N = 2^s` Shortcut-EH shards routed by the top `s` hash bits. See the
/// module docs for the routing scheme and the two write disciplines.
pub struct ShardedIndex {
    /// `s`: number of top hash bits consumed by routing.
    bits: u32,
    /// The shards, in routing order (`shards[i]` serves route value `i`).
    shards: Vec<RwLock<ShortcutEh>>,
}

impl ShardedIndex {
    /// Build `2^bits` shards, deriving each shard's configuration from
    /// `base` by renaming its pool memfd (`<name>-s<i>`). The routing
    /// rotation (`eh.hash_rot = bits`) and — for `bits > 0` — fair-share
    /// budget admission (`eh.pool.fair_share`) are forced on every shard;
    /// see [`ShardedIndex::try_new_with`] for per-shard control over the
    /// rest of the configuration.
    ///
    /// # Errors
    ///
    /// Propagates shard construction failures ([`IndexError::Pool`] and
    /// friends); already-built shards are dropped cleanly.
    pub fn try_new(bits: u32, base: ShortcutEhConfig) -> Result<Self, IndexError> {
        Self::try_new_with(bits, |i| {
            let mut cfg = base.clone();
            if bits > 0 {
                cfg.eh.pool.name = format!("{}-s{i}", cfg.eh.pool.name);
            }
            cfg
        })
    }

    /// Build `2^bits` shards, calling `make_cfg(i)` for shard `i`'s
    /// configuration. Two fields are overridden on every shard because
    /// they are correctness-critical for the sharded layout:
    ///
    /// * `eh.hash_rot = bits` — the shard directory must consume the hash
    ///   bits *below* the routing bits (see the module docs).
    /// * `eh.pool.fair_share = (bits > 0)` — shards sharing a
    ///   [`shortcut_rewire::VmaBudget`] get fair-share admission so one
    ///   shard cannot starve its siblings; with a single shard the knob
    ///   is forced off and behavior is bit-identical to a bare
    ///   [`ShortcutEh`].
    ///
    /// # Panics
    ///
    /// Panics if `bits > `[`MAX_SHARD_BITS`].
    ///
    /// # Errors
    ///
    /// Propagates shard construction failures; already-built shards are
    /// dropped cleanly.
    pub fn try_new_with(
        bits: u32,
        mut make_cfg: impl FnMut(usize) -> ShortcutEhConfig,
    ) -> Result<Self, IndexError> {
        assert!(
            bits <= MAX_SHARD_BITS,
            "shard_bits {bits} exceeds the cap of {MAX_SHARD_BITS} (2^{MAX_SHARD_BITS} shards)"
        );
        let n = 1usize << bits;
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let mut cfg = make_cfg(i);
            cfg.eh.hash_rot = bits;
            cfg.eh.pool.fair_share = bits > 0;
            shards.push(RwLock::new(ShortcutEh::try_new(cfg)?));
        }
        Ok(ShardedIndex { bits, shards })
    }

    /// `s`: the number of top hash bits consumed by routing.
    #[inline]
    pub fn shard_bits(&self) -> u32 {
        self.bits
    }

    /// `2^s`: the number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to: the top `s` bits of its
    /// multiplicative hash (0 when unsharded).
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        dir_slot(mult_hash(key), self.bits)
    }

    /// Run `f` against shard `i` under a **read** lock (per-shard stats,
    /// layout inspection, read-only probes).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&ShortcutEh) -> R) -> R {
        f(&self.shards[i].read())
    }

    /// Run `f` against shard `i` under a **write** lock (shared-writer
    /// maintenance such as per-shard [`ShortcutEh::compact`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn with_shard_mut<R>(&self, i: usize, f: impl FnOnce(&mut ShortcutEh) -> R) -> R {
        f(&mut self.shards[i].write())
    }

    // ------------------------------------------------------------------
    // Shared-write discipline: `&self` + per-shard write locks. One
    // writer thread per shard runs fully in parallel; readers use the
    // `Index` read path ([`Index::get`] / [`Index::get_many`] take
    // `&self` and a read lock).
    // ------------------------------------------------------------------

    /// Insert through a per-shard write lock (shared-writer discipline:
    /// safe from many threads; writes to *different* shards proceed in
    /// parallel, writes to the same shard serialize on its lock).
    ///
    /// # Errors
    ///
    /// Same contract as [`Index::insert`].
    pub fn insert_shared(&self, key: u64, value: u64) -> Result<(), IndexError> {
        self.shards[self.shard_of(key)].write().insert(key, value)
    }

    /// Remove through a per-shard write lock. See [`ShardedIndex::insert_shared`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Index::remove`].
    pub fn remove_shared(&self, key: u64) -> Result<Option<u64>, IndexError> {
        self.shards[self.shard_of(key)].write().remove(key)
    }

    /// Batched insert through per-shard write locks: the batch is split
    /// by shard (preserving relative order within each shard), and each
    /// shard's group is applied under one write-lock acquisition via its
    /// one-ticket batched path.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error. Shards whose groups
    /// were applied before the failure keep them; the failing shard keeps
    /// its applied prefix — the same "applied prefix stays readable"
    /// contract as [`Index::insert_batch`], per shard.
    pub fn insert_batch_shared(&self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        if self.bits == 0 {
            return self.shards[0].write().insert_batch(entries);
        }
        for (i, group) in self.scatter_entries(entries).iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.shards[i].write().insert_batch(group)?;
        }
        Ok(())
    }

    /// Batched remove through per-shard write locks: the batch is split by
    /// shard and each shard's group is applied under one write-lock
    /// acquisition; answers are reassembled in caller order (`out[i]`
    /// answers `keys[i]`, as in [`Index::remove_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error. Shards whose groups
    /// were applied before the failure keep their removals — the same
    /// per-shard applied-prefix contract as
    /// [`ShardedIndex::insert_batch_shared`].
    pub fn remove_batch_shared(&self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        if self.bits == 0 {
            return self.shards[0].write().remove_batch(keys);
        }
        let routed = self.scatter_keys(keys);
        let mut out = vec![None; keys.len()];
        let mut shard_keys = Vec::new();
        for (i, group) in routed.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&(_, k)| k));
            let answers = self.shards[i].write().remove_batch(&shard_keys)?;
            for (&(pos, _), ans) in group.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        Ok(out)
    }

    /// Split a batch of entries into per-shard groups, preserving the
    /// relative order of entries within each shard.
    fn scatter_entries(&self, entries: &[(u64, u64)]) -> Vec<Vec<(u64, u64)>> {
        let mut routed: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.shards.len()];
        for &(k, v) in entries {
            routed[self.shard_of(k)].push((k, v));
        }
        routed
    }

    /// Split a batch of keys into per-shard `(caller position, key)`
    /// groups, preserving relative order within each shard.
    fn scatter_keys(&self, keys: &[u64]) -> Vec<Vec<(usize, u64)>> {
        let mut routed: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &k) in keys.iter().enumerate() {
            routed[self.shard_of(k)].push((pos, k));
        }
        routed
    }

    // ------------------------------------------------------------------
    // Aggregated observability: every accessor folds the per-shard value
    // with the documented `merge()` semantics (counters sum, gauges take
    // the honest extreme). Use [`ShardedIndex::with_shard`] for the
    // per-shard breakdown.
    // ------------------------------------------------------------------

    /// Fold `f(shard)` over all shards under read locks.
    fn fold<T>(&self, mut f: impl FnMut(&ShortcutEh) -> T, merge: impl Fn(T, T) -> T) -> T {
        let mut acc: Option<T> = None;
        for s in &self.shards {
            let v = f(&s.read());
            acc = Some(match acc {
                None => v,
                Some(a) => merge(a, v),
            });
        }
        acc.expect("at least one shard")
    }

    /// Aggregated structural counters ([`IndexStats::merge`]: all summed).
    pub fn stats(&self) -> IndexStats {
        self.fold(|s| s.stats(), |a, b| a.merge(&b))
    }

    /// Aggregated mapper counters ([`shortcut_core::metrics::MaintSnapshot::merge`]:
    /// counters summed, `coarse_service_pct` takes the worst shard).
    pub fn maint_metrics(&self) -> shortcut_core::metrics::MaintSnapshot {
        self.fold(|s| s.maint_metrics(), |a, b| a.merge(&b))
    }

    /// Aggregated pool/rewiring counters ([`shortcut_rewire::StatsSnapshot::merge`]:
    /// all summed).
    pub fn pool_stats(&self) -> shortcut_rewire::StatsSnapshot {
        self.fold(|s| s.pool_stats(), |a, b| a.merge(&b))
    }

    /// Aggregated VMA accounting ([`shortcut_rewire::VmaSnapshot::merge`]:
    /// per-pool attribution and retirement counters summed; the shared
    /// budget gauges — `in_use`, `limit`, fair-share fields — take the
    /// max so a budget shared by all shards is not double-counted).
    pub fn vma_stats(&self) -> shortcut_rewire::VmaSnapshot {
        self.fold(|s| s.vma_stats(), |a, b| a.merge(&b))
    }

    /// Summed `(traditional, published)` version counters across shards:
    /// a monotone progress pair whose equality still means "every shard's
    /// shortcut has caught up" (per-shard published never exceeds
    /// traditional).
    pub fn versions(&self) -> (u64, u64) {
        self.fold(|s| s.versions(), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    /// Whether **every** shard's shortcut directory is in sync.
    pub fn in_sync(&self) -> bool {
        self.fold(|s| s.in_sync(), |a, b| a && b)
    }

    /// Block until every shard's shortcut is in sync or `timeout`
    /// elapses; `true` when all shards synced. The timeout is a shared
    /// deadline, not per shard.
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        for s in &self.shards {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !s.read().wait_sync(remaining) {
                return false;
            }
        }
        true
    }

    /// Whether **any** shard's maintenance is suspended by the VMA budget
    /// (with fair-share admission, a suspended shard implicates only its
    /// own footprint — see the module docs).
    pub fn shortcut_suspended(&self) -> bool {
        self.fold(|s| s.shortcut_suspended(), |a, b| a || b)
    }

    /// First maintenance error observed across shards, if any.
    pub fn maint_error(&self) -> Option<IndexError> {
        self.fold(|s| s.maint_error(), |a, b| a.or(b))
    }

    /// Maximum global depth across shards (the deepest shard directory).
    pub fn global_depth(&self) -> u32 {
        self.fold(|s| s.global_depth(), |a, b| a.max(b))
    }

    /// Total bucket count across shards.
    pub fn bucket_count(&self) -> usize {
        self.fold(|s| s.bucket_count(), |a, b| a + b)
    }

    /// Entry-weighted average directory fan-in: total directory slots
    /// over total buckets — the same quantity a single directory of the
    /// combined population would report, not a naive mean of per-shard
    /// averages.
    pub fn avg_fanin(&self) -> f64 {
        let (slots, buckets) = self.fold(
            |s| (s.avg_fanin() * s.bucket_count() as f64, s.bucket_count()),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        if buckets == 0 {
            0.0
        } else {
            slots / buckets as f64
        }
    }

    /// Compact every shard's bucket layout (exclusive discipline), summing
    /// the per-shard outcomes.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; earlier shards keep
    /// their completed passes.
    pub fn compact(&mut self) -> Result<CompactionOutcome, IndexError> {
        let mut total = CompactionOutcome {
            pages_moved: 0,
            vmas_before: 0,
            vmas_after: 0,
        };
        for s in &mut self.shards {
            let o = s.get_mut().compact()?;
            total.pages_moved += o.pages_moved;
            total.vmas_before += o.vmas_before;
            total.vmas_after += o.vmas_after;
        }
        Ok(total)
    }

    /// Summed planned-VMA estimate of every shard's current layout.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's estimation failure.
    pub fn layout_vmas(&self) -> Result<usize, IndexError> {
        let mut total = 0;
        for s in &self.shards {
            total += s.read().layout_vmas()?;
        }
        Ok(total)
    }

    /// Summed ideal (post-compaction) planned-VMA estimate.
    pub fn ideal_layout_vmas(&self) -> usize {
        self.fold(|s| s.ideal_layout_vmas(), |a, b| a + b)
    }

    /// Whether any shard's pool requested hugepage backing.
    pub fn huge_requested(&self) -> bool {
        self.fold(|s| s.huge_requested(), |a, b| a || b)
    }

    /// Whether **every** shard's pool actually runs on hugepages (the
    /// conservative aggregate: mixed backing reports `false`).
    pub fn huge_active(&self) -> bool {
        self.fold(|s| s.huge_active(), |a, b| a && b)
    }

    /// Shard 0's physical slot layout (identical across shards when built
    /// via [`ShardedIndex::try_new`]; with `try_new_with` and divergent
    /// per-shard layouts, inspect shards individually).
    pub fn slot_layout(&self) -> shortcut_rewire::SlotLayout {
        self.shards[0].read().slot_layout()
    }

    /// Shard 0's bucket geometry (see [`ShardedIndex::slot_layout`] for
    /// the homogeneity caveat).
    pub fn bucket_layout(&self) -> crate::bucket::BucketLayout {
        self.shards[0].read().bucket_layout()
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("bits", &self.bits)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Index for ShardedIndex {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let i = self.shard_of(key);
        self.shards[i].get_mut().insert(key, value)
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.shards[self.shard_of(key)].read().get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        let i = self.shard_of(key);
        self.shards[i].get_mut().remove(key)
    }

    fn len(&self) -> usize {
        self.fold(|s| s.len(), |a, b| a + b)
    }

    fn name(&self) -> &'static str {
        if self.bits == 0 {
            "Shortcut-EH"
        } else {
            "Sharded-Shortcut-EH"
        }
    }

    /// Scatter/gather batched lookup: keys are split by shard, each
    /// shard's group is answered through its one-ticket batched
    /// [`Index::get_many`] under a single read-lock acquisition, and the
    /// answers are reassembled in caller order (`out[i]` answers
    /// `keys[i]`).
    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        if self.bits == 0 {
            return self.shards[0].read().get_many(keys);
        }
        // (caller position, key) per shard, preserving relative order.
        let routed = self.scatter_keys(keys);
        let mut out = vec![None; keys.len()];
        let mut shard_keys = Vec::new();
        for (i, group) in routed.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&(_, k)| k));
            let answers = self.shards[i].read().get_many(&shard_keys);
            for (&(pos, _), ans) in group.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        out
    }

    /// Scatter batched insert: entries are split by shard and each
    /// shard's group is applied through its batched path.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; see
    /// [`ShardedIndex::insert_batch_shared`] for the per-shard
    /// applied-prefix contract.
    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        if self.bits == 0 {
            return self.shards[0].get_mut().insert_batch(entries);
        }
        for (i, group) in self.scatter_entries(entries).iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.shards[i].get_mut().insert_batch(group)?;
        }
        Ok(())
    }

    /// Scattered batched remove: keys are split by shard, each shard's
    /// group is applied through its batched path, and the answers are
    /// reassembled in caller order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error; see
    /// [`ShardedIndex::remove_batch_shared`] for the per-shard
    /// applied-prefix contract.
    fn remove_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        if self.bits == 0 {
            return self.shards[0].get_mut().remove_batch(keys);
        }
        let routed = self.scatter_keys(keys);
        let mut out = vec![None; keys.len()];
        let mut shard_keys = Vec::new();
        for (i, group) in routed.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&(_, k)| k));
            let answers = self.shards[i].get_mut().remove_batch(&shard_keys)?;
            for (&(pos, _), ans) in group.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eh::EhConfig;
    use shortcut_core::MaintConfig;
    use shortcut_rewire::PoolConfig;
    use std::sync::Arc;

    fn fast_cfg() -> ShortcutEhConfig {
        ShortcutEhConfig {
            eh: EhConfig {
                pool: PoolConfig {
                    name: "shard-test".into(),
                    initial_pages: 1,
                    min_growth_pages: 16,
                    view_capacity_pages: 1 << 16,
                    vma_budget: Some(shortcut_rewire::VmaBudget::with_limit(1_000_000)),
                    ..PoolConfig::default()
                },
                ..EhConfig::default()
            },
            maint: MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
            policy: Default::default(),
        }
    }

    fn val(k: u64) -> u64 {
        k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
    }

    #[test]
    fn unsharded_is_a_single_shard_and_routes_everything_to_it() {
        let mut t = ShardedIndex::try_new(0, fast_cfg()).unwrap();
        assert_eq!(t.shard_count(), 1);
        assert_eq!(t.name(), "Shortcut-EH");
        for k in 0..2_000u64 {
            assert_eq!(t.shard_of(k), 0);
            t.insert(k, val(k)).unwrap();
        }
        assert_eq!(t.len(), 2_000);
        for k in 0..2_000u64 {
            assert_eq!(t.get(k), Some(val(k)), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn unsharded_matches_a_bare_shortcut_eh() {
        // N = 1 must behave identically to ShortcutEh: same answers, same
        // routing hash (hash_rot = 0 leaves dir_hash == mult_hash).
        let mut sharded = ShardedIndex::try_new(0, fast_cfg()).unwrap();
        let mut bare = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..5_000u64 {
            sharded.insert(k, val(k)).unwrap();
            bare.insert(k, val(k)).unwrap();
        }
        assert_eq!(sharded.len(), bare.len());
        assert_eq!(sharded.global_depth(), bare.global_depth());
        assert_eq!(sharded.bucket_count(), bare.bucket_count());
        for k in (0..6_000u64).step_by(7) {
            assert_eq!(sharded.get(k), bare.get(k), "key {k}");
        }
    }

    #[test]
    fn routing_spreads_keys_over_all_shards() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..4_000u64 {
            t.insert(k, val(k)).unwrap();
        }
        assert_eq!(t.len(), 4_000);
        for i in 0..t.shard_count() {
            let n = t.with_shard(i, |s| s.len());
            assert!(n > 500, "shard {i} got only {n} of 4000 keys");
        }
        for k in 0..4_000u64 {
            assert_eq!(t.get(k), Some(val(k)), "key {k}");
        }
        assert_eq!(t.get(999_999), None);
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn removals_route_to_the_owning_shard() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..1_000u64 {
            t.insert(k, val(k)).unwrap();
        }
        for k in (0..1_000u64).step_by(3) {
            assert_eq!(t.remove(k).unwrap(), Some(val(k)), "key {k}");
        }
        for k in 0..1_000u64 {
            let expect = if k % 3 == 0 { None } else { Some(val(k)) };
            assert_eq!(t.get(k), expect, "key {k}");
        }
        assert_eq!(t.remove(424_242).unwrap(), None);
    }

    #[test]
    fn get_many_reassembles_in_caller_order() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..8_000u64 {
            t.insert(k, val(k)).unwrap();
        }
        // Mix hits and misses in an order that interleaves shards.
        let keys: Vec<u64> = (0..10_000u64).rev().step_by(3).collect();
        let got = t.get_many(&keys);
        assert_eq!(got.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(got[i], t.get(k), "key {k} at position {i}");
        }
    }

    #[test]
    fn insert_batch_scatters_and_everything_reads_back() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        let entries: Vec<(u64, u64)> = (0..6_000u64).map(|k| (k, val(k))).collect();
        t.insert_batch(&entries).unwrap();
        assert_eq!(t.len(), entries.len());
        for &(k, v) in &entries {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn sharded_lookups_sync_and_use_the_shortcut() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..20_000u64 {
            t.insert(k, k + 3).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        assert!(t.in_sync());
        let (tv, sv) = t.versions();
        assert_eq!(tv, sv);
        for k in 0..20_000u64 {
            assert_eq!(t.get(k), Some(k + 3), "key {k}");
        }
        let s = t.stats();
        assert!(
            s.shortcut_lookups > s.traditional_lookups,
            "shortcut {} vs traditional {}",
            s.shortcut_lookups,
            s.traditional_lookups
        );
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn shared_writers_one_per_shard_with_concurrent_readers() {
        let t = Arc::new(ShardedIndex::try_new(2, fast_cfg()).unwrap());
        let per_shard = 3_000u64;
        let keys: Vec<Vec<u64>> = {
            // Pre-partition keys so each writer thread owns one shard.
            let mut groups: Vec<Vec<u64>> = vec![Vec::new(); t.shard_count()];
            let mut k = 0u64;
            while groups.iter().any(|g| (g.len() as u64) < per_shard) {
                let s = t.shard_of(k);
                if (groups[s].len() as u64) < per_shard {
                    groups[s].push(k);
                }
                k += 1;
            }
            groups
        };
        std::thread::scope(|scope| {
            for group in &keys {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for &k in group {
                        t.insert_shared(k, val(k)).unwrap();
                    }
                });
            }
            for r in 0..4 {
                let t = Arc::clone(&t);
                let keys = &keys;
                scope.spawn(move || {
                    // Readers race the writers: any answer must be absent
                    // or the correct value, never garbage.
                    for pass in 0..3 {
                        for group in keys {
                            for &k in group.iter().skip((r + pass) % 4).step_by(17) {
                                if let Some(v) = t.get(k) {
                                    assert_eq!(v, val(k), "key {k}");
                                }
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), keys.iter().map(Vec::len).sum::<usize>());
        for group in &keys {
            for &k in group {
                assert_eq!(t.get(k), Some(val(k)), "key {k}");
            }
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn insert_batch_shared_takes_one_lock_per_shard() {
        let t = ShardedIndex::try_new(1, fast_cfg()).unwrap();
        let entries: Vec<(u64, u64)> = (0..4_000u64).map(|k| (k, val(k))).collect();
        t.insert_batch_shared(&entries).unwrap();
        for &(k, v) in &entries {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        assert_eq!(t.len(), entries.len());
    }

    #[test]
    fn remove_batch_scatters_and_reassembles_in_caller_order() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..3_000u64 {
            t.insert(k, val(k)).unwrap();
        }
        // Hits, misses, and an in-batch duplicate (second occurrence must
        // see None, like sequential removes).
        let keys: Vec<u64> = vec![7, 999_999, 2_500, 7, 42];
        let got = t.remove_batch(&keys).unwrap();
        assert_eq!(
            got,
            vec![Some(val(7)), None, Some(val(2_500)), None, Some(val(42))]
        );
        assert_eq!(t.len(), 3_000 - 3);
        assert_eq!(t.get(7), None);
        assert_eq!(t.get(2_500), None);
        assert_eq!(t.get(8), Some(val(8)), "untouched key survives");
    }

    #[test]
    fn remove_batch_shared_matches_sequential_removes() {
        let t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..2_000u64 {
            t.insert_shared(k, val(k)).unwrap();
        }
        let keys: Vec<u64> = (0..2_500u64).step_by(3).collect();
        let got = t.remove_batch_shared(&keys).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            let expect = if k < 2_000 { Some(val(k)) } else { None };
            assert_eq!(got[i], expect, "key {k} at position {i}");
        }
        assert_eq!(t.len(), 2_000 - keys.iter().filter(|&&k| k < 2_000).count());
        // Shared writers, one per shard, removing disjoint groups in
        // parallel must leave exactly the untouched keys behind.
        let survivors: Vec<u64> = (0..2_000u64).filter(|k| k % 3 != 0).collect();
        std::thread::scope(|scope| {
            for i in 0..t.shard_count() {
                let t = &t;
                let group: Vec<u64> = survivors
                    .iter()
                    .copied()
                    .filter(|&k| t.shard_of(k) == i)
                    .collect();
                scope.spawn(move || {
                    let got = t.remove_batch_shared(&group).unwrap();
                    for (j, &k) in group.iter().enumerate() {
                        assert_eq!(got[j], Some(val(k)), "key {k}");
                    }
                });
            }
        });
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn aggregates_fold_across_shards() {
        let mut t = ShardedIndex::try_new(2, fast_cfg()).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, val(k)).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        let buckets: usize = (0..4).map(|i| t.with_shard(i, |s| s.bucket_count())).sum();
        assert_eq!(t.bucket_count(), buckets);
        let depth_max = (0..4)
            .map(|i| t.with_shard(i, |s| s.global_depth()))
            .max()
            .unwrap();
        assert_eq!(t.global_depth(), depth_max);
        let fanin = t.avg_fanin();
        assert!(fanin >= 1.0, "fan-in {fanin} below 1");
        assert!(t.ideal_layout_vmas() >= t.shard_count());
        assert!(t.layout_vmas().unwrap() >= t.ideal_layout_vmas());
        // Pool counters really sum: each shard allocated at least a page.
        assert!(t.pool_stats().pages_allocated >= t.shard_count() as u64);
        assert!(!t.shortcut_suspended());
    }

    #[test]
    #[should_panic(expected = "shard_bits")]
    fn shard_bits_above_the_cap_panic() {
        let _ = ShardedIndex::try_new(MAX_SHARD_BITS + 1, fast_cfg());
    }
}
