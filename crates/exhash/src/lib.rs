//! # shortcut-exhash — the paper's five hashing schemes
//!
//! Implements every index evaluated in §4.2, all sharing the same
//! lightweight multiplicative hash and (where applicable) 4 KB buckets:
//!
//! * [`HashTable`] (**HT**) — one open-addressing/linear-probing table that
//!   doubles and fully rehashes when the load factor is exceeded.
//! * [`IncrementalHashTable`] (**HTI**) — Redis-style incremental rehash:
//!   the old and new tables coexist; every access migrates a batch of
//!   entries; lookups probe both tables, larger first.
//! * [`ChainedHash`] (**CH**) — a fixed-size table whose slots hold an
//!   entry or link to a chain of fixed-size (128 B) overflow buckets.
//! * [`ExtendibleHash`] (**EH**) — classical extendible hashing \[Fagin et
//!   al. 1979\]: a directory indexed by the most significant hash bits,
//!   pointing to 4 KB buckets with local depths; buckets split on overflow
//!   and the directory doubles when a bucket's local depth reaches the
//!   global depth.
//! * [`ShortcutEh`] (**Shortcut-EH**) — EH enhanced with a page-table
//!   shortcut directory maintained asynchronously (paper §4.1): lookups
//!   route through the shortcut whenever it is in sync and the average
//!   fan-in is at most the policy threshold.
//!
//! All five implement the [`Index`] trait: lookups through `&self` (so
//! readers can share an index across threads where the scheme is `Sync`),
//! writes through `&mut self` returning [`IndexError`] on pool or
//! directory-growth failure, and overridable batched entry points.

pub mod bucket;
pub mod chained;
pub mod eh;
pub mod error;
pub mod hash;
pub mod ht;
pub mod hti;
pub mod shard;
pub mod shortcut_eh;
pub mod stats;
pub mod traits;

pub use bucket::{
    probe_backend, BucketLayout, BucketRef, InsertOutcome, ProbeBackend, BUCKET_CAPACITY,
};
pub use chained::{ChConfig, ChainedHash};
pub use eh::{CompactionOutcome, DirEvent, EhConfig, ExtendibleHash};
pub use error::IndexError;
pub use hash::{bucket_slot_hash, dir_slot, mult_hash};
pub use ht::{HashTable, HtConfig};
pub use hti::{HtiConfig, IncrementalHashTable};
pub use shard::{ShardedIndex, MAX_SHARD_BITS};
pub use shortcut_eh::{ShortcutEh, ShortcutEhConfig};
pub use stats::IndexStats;
pub use traits::Index;
