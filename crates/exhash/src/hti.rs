//! **HTI**: incremental rehashing à la Redis.
//!
//! Like HT, but instead of rehashing all entries when the table grows, the
//! old and the new table coexist: every subsequent access migrates a batch
//! of `b ≤ n` entries. As long as both tables exist, lookups may have to
//! inspect both, "starting with the one containing more entries" (paper
//! §4.2). This flattens Figure 7a's staircase at the price of slower
//! lookups during (and bookkeeping after) migrations.
//!
//! Because *reads* migrate entries, [`Index::get`]'s `&self` signature is
//! served through a [`RefCell`]: the bookkeeping stays faithful to Redis
//! semantics, and the `RefCell` makes the type `!Sync`, so the compiler
//! rejects sharing an HTI across threads (unlike Shortcut-EH, whose reads
//! really are concurrent-safe).

use crate::error::IndexError;
use crate::hash::bucket_slot_hash;
use crate::stats::IndexStats;
use crate::traits::Index;
use std::cell::RefCell;

/// HTI tuning.
#[derive(Debug, Clone, Copy)]
pub struct HtiConfig {
    /// Initial capacity in slots (power of two).
    pub initial_capacity: usize,
    /// Maximum load factor before starting an incremental resize.
    pub max_load_factor: f64,
    /// Entries migrated per access while a resize is in flight.
    pub migration_batch: usize,
}

impl Default for HtiConfig {
    fn default() -> Self {
        HtiConfig {
            initial_capacity: 256,
            max_load_factor: 0.35,
            migration_batch: 64,
        }
    }
}

/// One open-addressing table (no tombstone reuse subtleties needed here —
/// removals during migration delete from both tables).
struct Table {
    keys: Vec<u64>,
    values: Vec<u64>,
    state: Vec<u8>, // 0 empty, 1 occupied, 2 tombstone
    mask: usize,
    live: usize,
}

impl Table {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Table {
            keys: vec![0; capacity],
            values: vec![0; capacity],
            state: vec![0; capacity],
            mask: capacity - 1,
            live: 0,
        }
    }

    #[inline]
    fn start(&self, key: u64) -> usize {
        (bucket_slot_hash(key) as usize) & self.mask
    }

    fn insert(&mut self, key: u64, value: u64) -> bool {
        let mut slot = self.start(key);
        let mut free = None;
        loop {
            match self.state[slot] {
                1 => {
                    if self.keys[slot] == key {
                        self.values[slot] = value;
                        return false;
                    }
                }
                2 => {
                    if free.is_none() {
                        free = Some(slot);
                    }
                }
                _ => {
                    let t = free.unwrap_or(slot);
                    self.keys[t] = key;
                    self.values[t] = value;
                    self.state[t] = 1;
                    self.live += 1;
                    return true;
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mut slot = self.start(key);
        loop {
            match self.state[slot] {
                1 if self.keys[slot] == key => {
                    return Some(self.values[slot]);
                }
                0 => return None,
                _ => {}
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let mut slot = self.start(key);
        loop {
            match self.state[slot] {
                1 if self.keys[slot] == key => {
                    self.state[slot] = 2;
                    self.live -= 1;
                    return Some(self.values[slot]);
                }
                0 => return None,
                _ => {}
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// The mutable state behind the `RefCell` (see module docs: reads migrate).
struct Inner {
    /// The current table; during migration, the *new* (larger) one.
    new: Table,
    /// The table being drained, if a migration is in flight.
    old: Option<Table>,
    /// Migration scan cursor into `old`.
    cursor: usize,
    stats: IndexStats,
}

impl Inner {
    fn maybe_start_resize(&mut self, max_load_factor: f64) {
        if self.old.is_some() {
            return;
        }
        let cap = self.new.keys.len();
        let max = (cap as f64 * max_load_factor) as usize;
        if self.new.live < max {
            return;
        }
        let old = std::mem::replace(&mut self.new, Table::new(cap * 2));
        self.old = Some(old);
        self.cursor = 0;
    }

    /// Move up to `batch` live entries from old to new (the per-access
    /// migration step).
    fn migrate_step(&mut self, batch: usize) {
        let Some(old) = self.old.as_mut() else {
            return;
        };
        let mut moved = 0;
        while moved < batch && self.cursor < old.keys.len() {
            if old.state[self.cursor] == 1 {
                let (k, v) = (old.keys[self.cursor], old.values[self.cursor]);
                // Tombstone, not Empty: keys displaced past this slot by
                // linear probing must stay reachable in the old table until
                // they migrate themselves.
                old.state[self.cursor] = 2;
                old.live -= 1;
                self.new.insert(k, v);
                moved += 1;
            }
            self.cursor += 1;
        }
        self.stats.migrated_entries += moved as u64;
        if old.live == 0 {
            self.old = None;
            self.cursor = 0;
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        match self.old.as_ref() {
            None => self.new.get(key),
            Some(old) => {
                // Probe the table holding more entries first.
                if old.live > self.new.live {
                    old.get(key).or_else(|| self.new.get(key))
                } else {
                    self.new.get(key).or_else(|| old.get(key))
                }
            }
        }
    }
}

/// The HTI baseline. See module docs.
pub struct IncrementalHashTable {
    inner: RefCell<Inner>,
    cfg: HtiConfig,
}

impl IncrementalHashTable {
    /// Build with custom configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero capacity, a load factor outside `(0, 1]`, or a zero
    /// migration batch (which would stall every in-flight resize forever).
    pub fn try_new(cfg: HtiConfig) -> Result<Self, IndexError> {
        if cfg.initial_capacity == 0 {
            return Err(IndexError::config("initial_capacity must be > 0"));
        }
        if !(cfg.max_load_factor > 0.0 && cfg.max_load_factor <= 1.0) {
            return Err(IndexError::config("max_load_factor must be in (0, 1]"));
        }
        if cfg.migration_batch == 0 {
            return Err(IndexError::config("migration_batch must be > 0"));
        }
        Ok(IncrementalHashTable {
            inner: RefCell::new(Inner {
                new: Table::new(cfg.initial_capacity.next_power_of_two()),
                old: None,
                cursor: 0,
                stats: IndexStats::default(),
            }),
            cfg,
        })
    }

    /// Build with defaults (256 slots, 0.35, batch 64).
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration; fallible for signature
    /// uniformity with the pool-backed schemes.
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(HtiConfig::default())
    }

    /// Whether a migration is currently in flight.
    pub fn is_migrating(&self) -> bool {
        self.inner.borrow().old.is_some()
    }

    /// Structural statistics.
    pub fn stats(&self) -> IndexStats {
        self.inner.borrow().stats
    }
}

impl Index for IncrementalHashTable {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let inner = self.inner.get_mut();
        inner.maybe_start_resize(self.cfg.max_load_factor);
        inner.migrate_step(self.cfg.migration_batch);
        // New entries go to the new table; if the key still lives in the
        // old table, overwrite it there to keep a single source of truth.
        if let Some(old) = inner.old.as_mut() {
            if old.get(key).is_some() {
                old.insert(key, value);
                return Ok(());
            }
        }
        inner.new.insert(key, value);
        Ok(())
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mut inner = self.inner.borrow_mut();
        inner.migrate_step(self.cfg.migration_batch);
        inner.get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        let inner = self.inner.get_mut();
        inner.migrate_step(self.cfg.migration_batch);
        let from_new = inner.new.remove(key);
        if from_new.is_some() {
            return Ok(from_new);
        }
        Ok(inner.old.as_mut().and_then(|t| t.remove(key)))
    }

    fn len(&self) -> usize {
        let inner = self.inner.borrow();
        inner.new.live + inner.old.as_ref().map_or(0, |t| t.live)
    }

    fn name(&self) -> &'static str {
        "HTI"
    }

    /// Batched lookup: one migration step for the whole batch (instead of
    /// one per key), then a single borrow for all probes — the kind of
    /// bookkeeping amortization the batch API exists for.
    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let mut inner = self.inner.borrow_mut();
        inner.migrate_step(self.cfg.migration_batch);
        keys.iter().map(|&k| inner.get(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(batch: usize) -> IncrementalHashTable {
        IncrementalHashTable::try_new(HtiConfig {
            initial_capacity: 16,
            max_load_factor: 0.35,
            migration_batch: batch,
        })
        .unwrap()
    }

    #[test]
    fn basic_roundtrip() {
        let mut t = IncrementalHashTable::with_defaults().unwrap();
        t.insert(1, 10).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.remove(1).unwrap(), Some(10));
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn bad_config_is_a_typed_error() {
        assert!(matches!(
            IncrementalHashTable::try_new(HtiConfig {
                initial_capacity: 16,
                max_load_factor: 0.35,
                migration_batch: 0,
            }),
            Err(IndexError::Config { .. })
        ));
    }

    #[test]
    fn migration_preserves_all_entries() {
        let mut t = small(4);
        for k in 0..5_000u64 {
            t.insert(k, k + 1).unwrap();
        }
        assert_eq!(t.len(), 5_000);
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), Some(k + 1), "key {k}");
        }
        assert!(t.stats().migrated_entries > 0);
    }

    #[test]
    fn lookups_work_mid_migration() {
        let mut t = small(1); // crawl, so we stay migrating a long time
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.is_migrating());
        // Every key readable while both tables coexist — through a shared
        // reference, since migration now hides behind the RefCell.
        let t = &t;
        for k in 0..200u64 {
            assert_eq!(t.get(k), Some(k), "key {k} during migration");
        }
    }

    #[test]
    fn get_many_matches_get_and_amortizes_migration() {
        let mut t = small(1);
        for k in 0..300u64 {
            t.insert(k, k * 3).unwrap();
        }
        assert!(t.is_migrating());
        let keys: Vec<u64> = (0..310).collect();
        let batched = t.get_many(&keys);
        for (i, k) in keys.iter().enumerate() {
            let want = if *k < 300 { Some(k * 3) } else { None };
            assert_eq!(batched[i], want, "key {k}");
        }
    }

    #[test]
    fn update_during_migration_is_visible() {
        let mut t = small(1);
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.is_migrating());
        for k in 0..100u64 {
            t.insert(k, k + 1000).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(t.get(k), Some(k + 1000), "stale value for {k}");
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn removal_during_migration() {
        let mut t = small(1);
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.is_migrating());
        for k in 0..50u64 {
            assert_eq!(t.remove(k).unwrap(), Some(k), "remove {k}");
        }
        assert_eq!(t.len(), 50);
        for k in 0..50u64 {
            assert_eq!(t.get(k), None);
        }
        for k in 50..100u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn migrated_slots_do_not_break_old_probe_chains() {
        // Regression: migration used to mark vacated old-table slots Empty,
        // truncating the probe chains of keys displaced past them. A
        // duplicate insert then went to the new table (len +1) and the
        // later-migrated stale copy overwrote the fresh value.
        let mut t = small(3);
        for (i, k) in [9u64, 10, 9, 25, 8, 3].into_iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        assert_eq!(t.len(), 5);
        // Triggers the resize + the vulnerable update.
        t.insert(25, 999).unwrap();
        assert_eq!(t.len(), 5, "duplicate insert must not grow the table");
        // Drain the migration fully and verify the fresh value survived.
        for _ in 0..100 {
            t.get(0);
        }
        assert!(!t.is_migrating());
        assert_eq!(t.get(25), Some(999));
    }

    #[test]
    fn migration_eventually_finishes() {
        let mut t = small(8);
        for k in 0..40u64 {
            t.insert(k, k).unwrap();
        }
        // Keep accessing until the old table drains.
        for _ in 0..1_000 {
            t.get(0);
            if !t.is_migrating() {
                break;
            }
        }
        assert!(!t.is_migrating());
        for k in 0..40u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }
}
