//! **Shortcut-EH**: extendible hashing with a page-table shortcut directory
//! (paper §4.1).
//!
//! The traditional directory remains the synchronous source of truth; a
//! shortcut directory replays its modifications **asynchronously** via the
//! mapper thread of [`shortcut_core::Maintainer`]:
//!
//! * bucket split → one *update* request per redirected slot;
//! * directory doubling → pending updates are dropped (superseded) and one
//!   *create* request carries the full slot→page assignment.
//!
//! Lookups route through the shortcut when (a) its version matches the
//! traditional directory's and (b) the average fan-in is at most the
//! routing threshold (default 8, §3.2). A seqlock-style ticket discards
//! results that raced a modification; the fallback is always the
//! traditional directory, so correctness never depends on the mapper.
//!
//! Superseded directories are *retired*, not leaked: each lookup holds a
//! [`shortcut_rewire::ReaderPin`] across its dereference, and the mapper
//! reclaims retired areas once all pre-retirement pins drain. Rebuilds are
//! admission-checked against the pool's [`shortcut_rewire::VmaBudget`]; a
//! directory too large for `vm.max_map_count` suspends the shortcut
//! (see [`ShortcutEh::shortcut_suspended`]) instead of dying in `mmap`.
//!
//! [`Index::get`] takes `&self` and the routing counters are atomics, so
//! any number of threads may share a `&ShortcutEh` and look up concurrently
//! (the type is `Sync`); Rust's aliasing rules guarantee no writer exists
//! while those shared borrows are alive.

use crate::bucket::{BucketLayout, BucketRef};
use crate::eh::{CompactionOutcome, DirEvent, EhConfig, ExtendibleHash};
use crate::error::IndexError;
use crate::hash::dir_slot;
use crate::stats::IndexStats;
use crate::traits::Index;
use shortcut_core::{CompactionPolicy, MaintConfig, MaintRequest, Maintainer, RoutePolicy};
use shortcut_rewire::RetireList;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shortcut-EH tuning.
#[derive(Debug, Clone, Default)]
pub struct ShortcutEhConfig {
    /// The underlying EH configuration (`track_events` is forced on).
    pub eh: EhConfig,
    /// Mapper-thread configuration (poll interval, eager population).
    pub maint: MaintConfig,
    /// Fan-in routing policy (§3.2; default threshold 8).
    pub policy: RoutePolicy,
}

/// Thread-safe routing counters, bumped from `&self` lookups.
#[derive(Debug, Default)]
struct RouteCounters {
    shortcut_lookups: AtomicU64,
    traditional_lookups: AtomicU64,
    shortcut_retries: AtomicU64,
}

/// The shortcut-enhanced extendible hash table. See module docs.
pub struct ShortcutEh {
    // Field order matters: the maintainer (mapper thread) must stop before
    // the EH (and its page pool) is torn down.
    maint: Maintainer,
    eh: ExtendibleHash,
    policy: RoutePolicy,
    counters: RouteCounters,
    /// The pool's retirement machinery: lookups pin it around every
    /// dereference of the published shortcut base, so the mapper's
    /// reclamation never unmaps a retired directory under a reader.
    retire: Arc<RetireList>,
    /// `log2(slot_bytes)` of the pool's layout: published slot `i` starts
    /// at `base + (i << slot_shift)` — the layout-derived replacement for
    /// the historical hard-coded `slot * 4096`.
    slot_shift: u32,
    /// Bucket geometry shared with the inner EH (capacity, offsets), used
    /// to type published slots on the lookup path.
    bucket_layout: BucketLayout,
    /// Bucket-layout compaction policy (mirrored into the inner EH; the
    /// mapper raises the trigger flag, the write path here runs the
    /// moves).
    compaction: CompactionPolicy,
    /// Split count below which a triggered compaction is not attempted
    /// again (paces passes and prevents futile re-runs on fan-in-heavy
    /// directories whose layout cannot shrink).
    next_compaction_splits: u64,
    /// Shorter cadence used while suspended or under footprint pressure
    /// (bounds the cost of repeated republish probes without delaying
    /// recovery by a full amortization pace).
    next_urgent_splits: u64,
}

impl ShortcutEh {
    /// Keys served under one reader pin / seqlock ticket in
    /// [`Index::get_many`]: large enough to amortize the per-chunk
    /// validation to nothing, small enough (microseconds of pin hold)
    /// that batched read storms cannot stall the reclaim scan.
    const GET_MANY_PIN_CHUNK: usize = 4096; // audit:allow(page-literal): key-batch size per pin, not a page size

    /// Build with custom configuration and spawn the mapper thread.
    ///
    /// # Errors
    ///
    /// Propagates pool creation / initial-bucket allocation failures from
    /// the underlying EH as [`IndexError::Pool`] — the path that used to
    /// panic when `vm.max_map_count` or the view reservation ran out.
    pub fn try_new(mut cfg: ShortcutEhConfig) -> Result<Self, IndexError> {
        cfg.eh.track_events = true;
        // One source of truth for the compaction policy: the maintenance
        // config. The inner EH needs a copy so rebuild-time compaction
        // runs inside its directory-doubling path.
        cfg.eh.compaction = cfg.maint.compaction;
        let compaction = cfg.maint.compaction;
        let mut eh = ExtendibleHash::try_new(cfg.eh)?;
        let handle = eh.pool_handle();
        let retire = Arc::clone(handle.retire_list());
        let slot_shift = handle.layout().slot_shift();
        let bucket_layout = eh.bucket_layout();
        let maint = Maintainer::spawn(handle, cfg.maint);
        // Write-path compaction work (page moves) mirrors into the
        // mapper's metrics so one snapshot tells the whole story.
        eh.set_maint_metrics(maint.metrics_handle());
        let this = ShortcutEh {
            maint,
            eh,
            policy: cfg.policy,
            counters: RouteCounters::default(),
            retire,
            slot_shift,
            bucket_layout,
            compaction,
            next_compaction_splits: 0,
            next_urgent_splits: 0,
        };
        // Publish the initial single-slot directory so the shortcut can
        // serve reads before the first doubling.
        let assignments = this.eh.directory_assignments()?;
        let v = this.maint.state().bump_traditional();
        this.maint.submit(MaintRequest::Create {
            slots: this.eh.dir_slots(),
            assignments,
            version: v,
        });
        Ok(this)
    }

    /// Build with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError::Pool`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(ShortcutEhConfig::default())
    }

    /// Current (traditional, shortcut) version numbers — the quantities
    /// plotted in Figure 8.
    pub fn versions(&self) -> (u64, u64) {
        let s = self.maint.state();
        (s.traditional_version(), s.shortcut_version())
    }

    /// Whether the shortcut directory is currently in sync.
    pub fn in_sync(&self) -> bool {
        self.maint.state().in_sync()
    }

    /// Block until the shortcut catches up (test/bench helper).
    pub fn wait_sync(&self, timeout: std::time::Duration) -> bool {
        self.maint.wait_sync(timeout)
    }

    /// Structural + routing statistics (merged with the inner EH's).
    pub fn stats(&self) -> IndexStats {
        let mut s = self.eh.stats();
        s.shortcut_lookups = self.counters.shortcut_lookups.load(Ordering::Relaxed);
        s.traditional_lookups = self.counters.traditional_lookups.load(Ordering::Relaxed);
        s.shortcut_retries = self.counters.shortcut_retries.load(Ordering::Relaxed);
        s
    }

    /// Maintenance counters of the mapper thread.
    pub fn maint_metrics(&self) -> shortcut_core::metrics::MaintSnapshot {
        self.maint.metrics()
    }

    /// Operation counters of the backing page pool.
    pub fn pool_stats(&self) -> shortcut_rewire::StatsSnapshot {
        self.eh.pool_stats()
    }

    /// VMA budget and retirement counters of the backing page pool.
    pub fn vma_stats(&self) -> shortcut_rewire::VmaSnapshot {
        self.eh.vma_stats()
    }

    /// Reader-pin pairing of this index's retire list (asymmetric
    /// membarrier pins, or the Dekker RMW fallback).
    pub fn pin_strategy(&self) -> shortcut_rewire::PinStrategy {
        self.retire.pin_strategy()
    }

    /// Whether shortcut maintenance is suspended because the directory no
    /// longer fits the VMA budget. The index keeps answering every lookup
    /// through the traditional directory; raise `vm.max_map_count` (or the
    /// injected budget) for shortcut-served reads at this scale.
    pub fn shortcut_suspended(&self) -> bool {
        self.maint.suspended()
    }

    /// Average directory fan-in.
    pub fn avg_fanin(&self) -> f64 {
        self.eh.avg_fanin()
    }

    /// Global depth of the traditional directory.
    pub fn global_depth(&self) -> u32 {
        self.eh.global_depth()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.eh.bucket_count()
    }

    /// The pool's physical slot layout (`2^k` base pages per bucket).
    pub fn slot_layout(&self) -> shortcut_rewire::SlotLayout {
        self.eh.slot_layout()
    }

    /// The derived bucket geometry (capacity, offsets).
    pub fn bucket_layout(&self) -> BucketLayout {
        self.eh.bucket_layout()
    }

    /// Whether hugepage backing was requested on the pool.
    pub fn huge_requested(&self) -> bool {
        self.eh.huge_requested()
    }

    /// Whether the pool's hugetlb backend is active (request at the 2 MB
    /// boundary whose creation-time probe succeeded); `false` after a
    /// clean fallback to 4 KB-page slots.
    pub fn huge_active(&self) -> bool {
        self.eh.huge_active()
    }

    /// First maintenance error, if the mapper thread failed, wrapped as the
    /// index-level error type.
    pub fn maint_error(&self) -> Option<IndexError> {
        self.maint.error().map(IndexError::Pool)
    }

    /// The shared maintenance state (diagnostics/benchmarks).
    #[doc(hidden)]
    pub fn state_arc(&self) -> std::sync::Arc<shortcut_core::SharedDirectoryState> {
        std::sync::Arc::clone(self.maint.state())
    }

    /// Published shortcut state (base address, slots) if in sync.
    /// For diagnostics and benchmarks only — dereferencing the base
    /// requires a pin from the pool's retire list.
    #[doc(hidden)]
    pub fn published_state(&self) -> Option<(usize, usize)> {
        self.maint
            .state()
            .begin_read()
            .map(|t| (t.base as usize, t.slots))
    }

    /// Forward directory events to the mapper queue.
    fn relay_events(&mut self) {
        for ev in self.eh.take_events() {
            match ev {
                DirEvent::SlotUpdated { slot, ppage } => {
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Update {
                        slot,
                        ppage,
                        version: v,
                    });
                }
                // Both a doubling and a full-pass compaction supersede
                // every pending update and require a full rebuild; after a
                // compaction the assignment is an identity run the rebuild
                // coalesces into a handful of mmap calls.
                DirEvent::Doubled { slots, assignments }
                | DirEvent::Rebuilt { slots, assignments } => {
                    // Paper: pending updates became outdated; drop them
                    // before enqueueing the create.
                    self.maint.drop_pending();
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Create {
                        slots,
                        assignments,
                        version: v,
                    });
                }
            }
        }
    }

    /// Minimum splits between triggered compaction attempts.
    const COMPACTION_SPLIT_INTERVAL: u64 = 64;

    /// Splits that must elapse before the next compaction attempt: at
    /// least the flat interval, and at least a quarter of the bucket
    /// count — a pass costs one page move per bucket, so this bounds the
    /// background overhead at ~4 amortized moves per split regardless of
    /// scale.
    fn compaction_pace(&self) -> u64 {
        Self::COMPACTION_SPLIT_INTERVAL.max(self.eh.bucket_count() as u64 / 4)
    }

    /// Hand the mapper a fresh full-directory announcement targeting a
    /// footprint of at most `target` VMAs, at the **finest** published
    /// depth any layout affords (finer depth = more buckets resolvable =
    /// more shortcut-served keys). Event-only when the current physical
    /// placement already achieves that depth; a physical directory-order
    /// pass when a freshly sorted layout publishes finer; a counted skip
    /// when no depth of any layout can fit.
    fn republish_or_compact(
        &mut self,
        target: usize,
        improve_below: Option<u32>,
        count_skip: bool,
    ) {
        let shifts = 0..=shortcut_core::MAX_PUBLISH_SHIFT.min(self.eh.dir_slots().trailing_zeros());
        let best_current = shifts.clone().find(|&s| {
            self.eh
                .layout_vmas_at(s)
                .is_ok_and(|planned| planned <= target)
        });
        let best_ideal = shifts
            .clone()
            .find(|&s| self.eh.ideal_layout_vmas_at(s) <= target);
        // For voluntary service recovery, only act when the achievable
        // published depth is strictly finer than what is live now.
        if let Some(bound) = improve_below {
            let best = best_current
                .unwrap_or(u32::MAX)
                .min(best_ideal.unwrap_or(u32::MAX));
            if best >= bound {
                return;
            }
        }
        match (best_current, best_ideal) {
            // A pass buys a finer published depth than the placement we
            // already have — pay for the moves.
            (cur, Some(ideal)) if ideal < cur.unwrap_or(u32::MAX) => {
                if self.eh.compact_full().is_err() {
                    self.eh.note_compaction_skipped();
                }
            }
            // The current placement is already as finely publishable as a
            // fresh sort would be: just re-announce it.
            (Some(_), _) => {
                let _ = self.eh.emit_rebuilt_event();
            }
            // Genuinely over `target` at any depth of any layout; further
            // growth shrinks the irreducible footprint (each split
            // retires one aliased slot pair), so a later attempt can
            // succeed.
            (None, _) => {
                if count_skip {
                    self.eh.note_compaction_skipped();
                }
            }
        }
    }

    /// React to the mapper's compaction signals on the write path — the
    /// only place bucket pages can be relocated without tearing a reader:
    ///
    /// * step an in-flight incremental plan;
    /// * **rescue** a budget-suspended shortcut by re-announcing /
    ///   re-sorting once some published depth fits again;
    /// * **repair** a fragmenting live directory when the mapper raises
    ///   the trigger flag — incrementally while published at full depth,
    ///   via the republish ladder when published coarse (an unaffordable
    ///   publish depth cannot be fixed in place) or when footprint
    ///   pressure is urgent.
    fn maybe_compact(&mut self) {
        if !self.compaction.enabled() {
            return;
        }
        if self.eh.compaction_plan_active() {
            // A failed move aborted the plan inside compact_step (already
            // counted as skipped); the index stays fully consistent.
            let _ = self.eh.compact_step(self.compaction.background_moves);
            return;
        }
        // Everything below first passes cheap gates (plain counters and
        // atomics); the budget is only read (atomically, via
        // `ExtendibleHash::vma_budget`) once an action is actually due —
        // this runs on every insert.
        let splits = self.eh.stats().splits;
        if self.maint.state().suspended() {
            if splits < self.next_urgent_splits {
                return;
            }
            self.next_urgent_splits = splits + Self::COMPACTION_SPLIT_INTERVAL;
            let limit = self.eh.vma_budget().limit();
            let admitted = limit.saturating_sub(shortcut_core::maintenance::budget_headroom(limit));
            self.republish_or_compact(admitted, None, true);
            return;
        }
        let dir_slots = self.eh.dir_slots();
        let published_slots = self.maint.state().published_slots();
        let coarse = published_slots != 0 && published_slots < dir_slots;
        // Service recovery: a coarse publish resolves only the shallow
        // buckets; once the fan-in has shrunk enough that a finer depth
        // is affordable, re-announce (or re-sort) at that depth. Runs on
        // the urgent cadence — service is degraded meanwhile — but acts
        // only when the published depth actually improves.
        if coarse && splits >= self.next_urgent_splits {
            self.next_urgent_splits = splits + Self::COMPACTION_SPLIT_INTERVAL;
            let published_shift = (dir_slots / published_slots).trailing_zeros();
            let limit = self.eh.vma_budget().limit();
            self.republish_or_compact(limit / 2, Some(published_shift), false);
            return;
        }
        if self.compaction.background_moves == 0 || !self.maint.state().compaction_wanted() {
            return;
        }
        if splits < self.next_urgent_splits && splits < self.next_compaction_splits {
            return;
        }
        // Amortization pace bounds background copy bandwidth — but when
        // the footprint has grown past half the budget, VMA headroom
        // matters more than copy bandwidth, so repair on the (shorter)
        // urgent cadence.
        let budget = std::sync::Arc::clone(self.eh.vma_budget());
        let limit = budget.limit();
        let urgent = budget.in_use() * 2 > limit;
        if urgent {
            if splits < self.next_urgent_splits {
                return;
            }
            self.next_urgent_splits = splits + Self::COMPACTION_SPLIT_INTERVAL;
            // Re-publish at the best depth the budget affords, comfortably
            // below the limit so the next splits have room to fragment.
            self.next_compaction_splits = splits + self.compaction_pace();
            self.republish_or_compact(limit / 2, None, true);
            return;
        }
        if splits < self.next_compaction_splits {
            return;
        }
        self.next_compaction_splits = splits + self.compaction_pace();
        // Published at full depth under no pressure: repair in place,
        // incrementally, if the saving justifies the pass's cost (one
        // move per bucket).
        let ideal = self.eh.ideal_layout_vmas();
        let min_saving = (Self::COMPACTION_SPLIT_INTERVAL as usize).max(self.eh.bucket_count() / 8);
        let worthwhile = self
            .eh
            .layout_vmas()
            .is_ok_and(|planned| planned.saturating_sub(ideal) >= min_saving);
        if !worthwhile {
            self.eh.note_compaction_skipped();
            return;
        }
        if self.eh.start_compaction_plan().is_err() {
            // No room for the target run (view capacity): keep serving
            // with the fragmented layout.
            self.eh.note_compaction_skipped();
        }
    }

    /// Relocate every bucket page into directory order now, in one
    /// synchronous pass, and hand the resulting identity rebuild to the
    /// mapper. See [`ExtendibleHash::compact_full`]; the returned outcome
    /// reports the planned-VMA estimate before and after.
    ///
    /// # Errors
    ///
    /// Propagates pool failures (typically: no room for the contiguous
    /// target run). The index stays fully consistent and keeps answering.
    pub fn compact(&mut self) -> Result<CompactionOutcome, IndexError> {
        let r = self.eh.compact_full();
        // Relay even on failure: a partial pass emits a Rebuilt event
        // carrying the current truth.
        self.relay_events();
        r
    }

    /// Planned-VMA estimate of the current bucket layout (`O(slots)`).
    ///
    /// # Errors
    ///
    /// Propagates directory-invariant violations as [`IndexError::Pool`].
    pub fn layout_vmas(&self) -> Result<usize, IndexError> {
        self.eh.layout_vmas()
    }

    /// `slots − buckets + 1`: the footprint of a perfectly compacted
    /// layout.
    pub fn ideal_layout_vmas(&self) -> usize {
        self.eh.ideal_layout_vmas()
    }

    /// Attempt the lookup through the shortcut directory. The outer `None`
    /// means "not answered" (out of sync, raced, or routed away) — fall
    /// back to the traditional directory.
    ///
    /// Takes `&self`: the hot path must not carry a unique borrow — the
    /// measured cost of the out-of-line variant of this function was ~2x
    /// on the benchmark host (the call boundary blocks hoisting of the
    /// fan-in computation and keeps the seqlock loads from fusing with the
    /// surrounding code). Statistics are bumped by the callers.
    #[inline(always)]
    fn shortcut_get(&self, key: u64, hash: u64) -> Option<Option<u64>> {
        if !self
            .policy
            .use_shortcut(self.eh.avg_fanin(), true /* checked by ticket */)
        {
            return None;
        }
        let state = self.maint.state();
        // Cheap pre-check without a pin: versions are plain atomics and
        // deciding "out of sync" touches no shortcut memory. This keeps
        // the fallback path (including budget-suspended operation) free
        // of the pin's fence.
        if !state.in_sync() {
            return None;
        }
        // The pin must be taken before the ticket: it is what keeps a
        // directory this read might land in mapped until the read drains.
        let _pin = self.retire.pin();
        let t = state.begin_read()?;
        debug_assert!(t.slots.is_power_of_two());
        let g = t.slots.trailing_zeros();
        let slot = dir_slot(hash, g);
        // SAFETY: the published area has t.slots slots; `slot < t.slots`
        // by construction of dir_slot; a racing rebuild retires the old
        // area but reclamation waits for `_pin` to drop, so the slot stays
        // readable (stale data is discarded by the ticket below).
        let bucket_ptr = unsafe { t.base.add(slot << self.slot_shift) };
        // SAFETY: `bucket_ptr` is in-bounds and slot-aligned per above.
        let bucket = unsafe { BucketRef::from_ptr(bucket_ptr, self.bucket_layout) };
        // The shortcut may be published at a coarser depth than the
        // traditional directory (VMA-budget admission). A bucket deeper
        // than the published depth shares its slot with a sibling and is
        // not resolvable here — serve that key traditionally. (A torn
        // read of the depth field is fine: the ticket check below
        // discards any value read across a racing modification.)
        if bucket.local_depth() > g {
            return None;
        }
        let result = bucket.get(key);
        if self.maint.state().still_valid(t) {
            Some(result)
        } else {
            None
        }
    }
}

impl Index for ShortcutEh {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let r = self.eh.insert(key, value);
        // Compaction work (trigger reaction / plan stepping) happens
        // before the relay so its slot updates ride the same submission.
        self.maybe_compact();
        // Relay even on error: a multi-round split can apply a first round
        // (moving entries and bumping the traditional directory) before a
        // later round fails. Skipping the relay would leave the shortcut
        // stamped in-sync while pointing at pre-split buckets.
        self.relay_events();
        r
    }

    fn get(&self, key: u64) -> Option<u64> {
        let h = self.eh.dir_hash(key);
        // Run the hot path through the seqlock-guarded shortcut, then
        // account on the atomic counters.
        if let Some(res) = self.shortcut_get(key, h) {
            self.counters
                .shortcut_lookups
                .fetch_add(1, Ordering::Relaxed);
            return res;
        }
        if self.in_sync() {
            // In sync but unanswered: the ticket raced a modification.
            self.counters
                .shortcut_retries
                .fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .traditional_lookups
            .fetch_add(1, Ordering::Relaxed);
        self.eh.get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        // Removals mutate bucket *contents*, which both directories alias —
        // no directory change, no maintenance traffic.
        self.eh.remove(key)
    }

    fn len(&self) -> usize {
        self.eh.len()
    }

    fn name(&self) -> &'static str {
        "Shortcut-EH"
    }

    /// Batched lookup with one seqlock ticket (and one reader pin) per
    /// chunk of up to 4096 keys: the policy
    /// check, fan-in computation, and the two version validations are
    /// paid once per chunk instead of per key, while the pin is released
    /// between chunks so an arbitrarily large batch cannot starve
    /// retired-directory reclamation. A chunk that is out of sync or
    /// raced a modification falls back to the traditional directory.
    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out: Vec<Option<u64>> = Vec::with_capacity(keys.len());
        // The policy decision (fan-in computation included) depends only
        // on directory shape, which `&self` methods cannot change — pay it
        // once per batch, not per chunk. The *pin*, by contrast, stays
        // per-chunk on purpose: one pin spanning an arbitrarily large
        // batch would keep a reclaim-scan stripe busy indefinitely and
        // starve retired-directory reclamation (PR 3's bounded-spin scan
        // gives up, and retired areas accumulate against the VMA budget).
        let use_shortcut = self.policy.use_shortcut(self.eh.avg_fanin(), true);
        for chunk in keys.chunks(Self::GET_MANY_PIN_CHUNK.max(1)) {
            if use_shortcut && self.in_sync() {
                let _pin = self.retire.pin();
                if let Some(t) = self.maint.state().begin_read() {
                    debug_assert!(t.slots.is_power_of_two());
                    let g = t.slots.trailing_zeros();
                    let start = out.len();
                    let mut deep = 0u64;
                    out.extend(chunk.iter().map(|&k| {
                        let slot = dir_slot(self.eh.dir_hash(k), g);
                        // SAFETY: see `shortcut_get` — slot < t.slots and
                        // the pin defers reclamation of retired areas.
                        let bucket = unsafe {
                            BucketRef::from_ptr(
                                t.base.add(slot << self.slot_shift),
                                self.bucket_layout,
                            )
                        };
                        // Coarsely published directory: over-depth buckets
                        // are unresolvable here, answer those keys
                        // traditionally (see `shortcut_get`).
                        if bucket.local_depth() > g {
                            deep += 1;
                            self.eh.get(k)
                        } else {
                            bucket.get(k)
                        }
                    }));
                    if self.maint.state().still_valid(t) {
                        self.counters
                            .shortcut_lookups
                            .fetch_add(chunk.len() as u64 - deep, Ordering::Relaxed);
                        self.counters
                            .traditional_lookups
                            .fetch_add(deep, Ordering::Relaxed);
                        continue;
                    }
                    // The chunk raced a modification; discard it, count
                    // one retry (one discarded ticket) and re-answer it
                    // traditionally.
                    out.truncate(start);
                    self.counters
                        .shortcut_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            self.counters
                .traditional_lookups
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            out.extend(chunk.iter().map(|&k| self.eh.get(k)));
        }
        out
    }

    /// Batched insert that relays directory events to the mapper once per
    /// batch instead of once per key, shrinking producer-side overhead
    /// during insert storms.
    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        for &(k, v) in entries {
            if let Err(e) = self.eh.insert(k, v) {
                // Relay what already happened so the shortcut still
                // converges on the applied prefix.
                self.relay_events();
                return Err(e);
            }
            // Keep incremental compaction paced per entry, not per batch:
            // a giant batch would otherwise stall an in-flight plan.
            self.maybe_compact();
        }
        self.relay_events();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::PoolConfig;
    use std::time::Duration;

    fn fast_cfg() -> ShortcutEhConfig {
        ShortcutEhConfig {
            eh: EhConfig {
                pool: PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: 16,
                    view_capacity_pages: 1 << 16,
                    ..PoolConfig::default()
                },
                ..EhConfig::default()
            },
            maint: MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
            policy: RoutePolicy::default(),
        }
    }

    #[test]
    fn basic_roundtrip() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.get(3), None);
        assert_eq!(t.remove(1).unwrap(), Some(10));
        assert_eq!(t.get(1), None);
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn bulk_insert_then_synced_lookups() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let n = 20_000u64;
        for k in 0..n {
            t.insert(k, k + 3).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        assert!(t.in_sync());
        let (tv, sv) = t.versions();
        assert_eq!(tv, sv);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k + 3), "key {k}");
        }
        // With fan-in 1-ish and in-sync state, the shortcut must have
        // served the bulk of the lookups.
        let s = t.stats();
        assert!(
            s.shortcut_lookups > s.traditional_lookups,
            "shortcut {} vs traditional {}",
            s.shortcut_lookups,
            s.traditional_lookups
        );
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn lookups_correct_even_while_out_of_sync() {
        // Slow mapper: the shortcut lags; every lookup must still be right.
        let mut cfg = fast_cfg();
        cfg.maint.poll_interval = Duration::from_millis(200);
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        for k in 0..5_000u64 {
            t.insert(k, k).unwrap();
            if k % 97 == 0 {
                // Interleaved lookups during the insert storm.
                assert_eq!(t.get(k), Some(k));
                assert_eq!(t.get(k + 1_000_000), None);
            }
        }
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), Some(k), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn shortcut_matches_traditional_for_every_key() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k * 7).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        // Compare the shortcut path against the traditional path directly.
        for k in (0..10_000u64).step_by(37) {
            let h = t.eh.dir_hash(k);
            let via_shortcut = t.shortcut_get(k, h).expect("in sync");
            let via_traditional = t.eh.get(k);
            assert_eq!(via_shortcut, via_traditional, "key {k}");
        }
    }

    #[test]
    fn get_many_agrees_with_get() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..8_000u64 {
            t.insert(k, !k).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        let keys: Vec<u64> = (0..8_200).collect();
        let batched = t.get_many(&keys);
        assert_eq!(batched.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batched[i], t.get(k), "key {k}");
        }
        // The synced batch must have been answered via the shortcut.
        let s = t.stats();
        assert!(s.shortcut_lookups >= keys.len() as u64);
    }

    #[test]
    fn insert_batch_relays_to_the_mapper() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let entries: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k * 3)).collect();
        t.insert_batch(&entries).unwrap();
        assert_eq!(t.len(), entries.len());
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        for &(k, v) in entries.iter().step_by(61) {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn versions_advance_with_structure() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let (tv0, _) = t.versions();
        for k in 0..1_000u64 {
            t.insert(k, k).unwrap();
        }
        let (tv1, _) = t.versions();
        assert!(tv1 > tv0, "splits/doublings must bump the version");
        assert!(t.wait_sync(Duration::from_secs(10)));
        let (tv2, sv2) = t.versions();
        assert_eq!(tv2, sv2);
    }

    #[test]
    fn high_fanin_routes_traditionally() {
        // Policy with threshold 0 → never use the shortcut.
        let mut cfg = fast_cfg();
        cfg.policy = RoutePolicy::with_threshold(0.0);
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(t.get(k), Some(k));
        }
        let s = t.stats();
        assert_eq!(s.shortcut_lookups, 0);
        assert_eq!(s.traditional_lookups, 100);
    }

    #[test]
    fn len_and_updates() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        t.insert(9, 1).unwrap();
        t.insert(9, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(9), Some(2));
    }

    #[test]
    fn tiny_vma_budget_suspends_shortcut_but_keeps_answers() {
        // A private budget that can hold only a few dozen directory
        // mappings: once the directory outgrows it, maintenance must
        // suspend (no ENOMEM, no mapper error) while every lookup keeps
        // being answered through the traditional directory.
        let mut cfg = fast_cfg();
        cfg.eh.pool.vma_budget = Some(shortcut_rewire::VmaBudget::with_limit(100));
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        let n = 30_000u64;
        // Insert in paced chunks so the mapper actually applies (and later
        // retires) intermediate directories instead of superseding them
        // all in one batch, then keep going past the point of suspension.
        let mut k = 0u64;
        while k < n {
            let end = (k + 2_000).min(n);
            while k < end {
                t.insert(k, k * 5).unwrap();
                k += 1;
            }
            if !t.shortcut_suspended() {
                let _ = t.wait_sync(Duration::from_secs(10));
            }
        }
        assert!(t.shortcut_suspended(), "budget never suspended the mapper");
        assert!(
            !t.wait_sync(Duration::from_secs(10)),
            "suspended must not sync"
        );
        assert!(t.maint_error().is_none());
        assert!(t.maint_metrics().creates_skipped > 0);
        assert!(t.maint_metrics().creates_applied > 0);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k * 5), "key {k}");
        }
        // The budget estimate stays within its limit, and the retired
        // directories were reclaimed rather than accumulated. Give the
        // mapper a few idle ticks to drain the tail.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.vma_stats().retired_areas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let vma = t.vma_stats();
        assert!(vma.in_use <= vma.limit, "{vma:?}");
        assert!(vma.areas_retired > 0, "{vma:?}");
        assert_eq!(
            vma.areas_retired, vma.areas_reclaimed,
            "retired directories must drain once readers are gone: {vma:?}"
        );
    }

    #[test]
    fn explicit_compact_collapses_live_vmas() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..30_000u64 {
            t.insert(k, k * 9).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        let before = t.layout_vmas().unwrap();
        let ideal = t.ideal_layout_vmas();
        assert!(before > ideal, "nothing to compact");

        let out = t.compact().unwrap();
        assert_eq!(out.vmas_before, before);
        assert_eq!(out.vmas_after, ideal);
        assert!(
            t.wait_sync(Duration::from_secs(10)),
            "rebuild never applied"
        );
        // Give the mapper a few ticks to reclaim the superseded directory,
        // then the budget must reflect the compacted layout (plus the pool
        // view and small constants).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.vma_stats().retired_areas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let vma = t.vma_stats();
        assert!(
            vma.live_vmas() <= (ideal + 16) as u64,
            "live estimate did not collapse: {vma:?} (ideal {ideal})"
        );
        assert!(t.maint_metrics().pages_moved > 0);
        assert!(t.maint_metrics().compactions > 0);
        for k in 0..30_000u64 {
            assert_eq!(t.get(k), Some(k * 9), "key {k}");
        }
        // The shortcut (not the fallback) serves once synced.
        let served_before = t.stats().shortcut_lookups;
        for k in 0..1_000u64 {
            let _ = t.get(k);
        }
        assert!(t.stats().shortcut_lookups >= served_before + 900);
    }

    #[test]
    fn compaction_keeps_shortcut_served_where_it_used_to_suspend() {
        // A ~600-mapping budget, far below one-VMA-per-slot scale. Without
        // compaction, worst-case admission refuses the first ≥600-slot
        // rebuild for good (PR 3 behavior). With compaction, rebuilds are
        // admitted at their exact identity footprint — published at a
        // coarser depth when even that is too aliased — and transient
        // refusals are rescued by the write path, so the index must end
        // in sync and shortcut-serving.
        let n = 100_000u64;
        let build = |compaction: shortcut_core::CompactionPolicy| {
            let mut cfg = fast_cfg();
            cfg.eh.pool.vma_budget = Some(shortcut_rewire::VmaBudget::with_limit(600));
            cfg.eh.pool.view_capacity_pages = 1 << 17;
            cfg.maint.compaction = compaction;
            ShortcutEh::try_new(cfg).unwrap()
        };

        let mut on = build(shortcut_core::CompactionPolicy::on());
        let mut k = 0u64;
        while k < n {
            for _ in 0..500 {
                on.insert(k, k + 7).unwrap();
                k += 1;
            }
            let _ = on.wait_sync(Duration::from_secs(10));
        }
        // Growth may transit refusals, but each must resolve (coarse
        // publish or rescue): at rest the index serves via the shortcut.
        assert!(
            on.wait_sync(Duration::from_secs(30)),
            "never back in sync: vma={:?} metrics={:?}",
            on.vma_stats(),
            on.maint_metrics()
        );
        assert!(!on.shortcut_suspended());
        assert!(on.maint_error().is_none());
        let m = on.maint_metrics();
        assert!(
            m.creates_coarse > 0,
            "a 600-mapping budget must have forced coarse publishes: {m:?}"
        );
        let vma = on.vma_stats();
        assert!(vma.in_use <= vma.limit, "{vma:?}");
        for key in (0..n).step_by(101) {
            assert_eq!(on.get(key), Some(key + 7), "key {key}");
        }
        // In-sync lookups go through the shortcut (over-depth buckets may
        // fall back per key, but the bulk must be shortcut-served).
        let served_before = on.stats().shortcut_lookups;
        let keys: Vec<u64> = (0..4_096u64).collect();
        let got = on.get_many(&keys);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(got[i], Some(key + 7));
        }
        let served = on.stats().shortcut_lookups - served_before;
        assert!(
            served > 2_048,
            "only {served}/4096 batched lookups shortcut-served \
             (published={:?} dir_slots={} buckets={} metrics={:?})",
            on.published_state(),
            on.eh.dir_slots(),
            on.bucket_count(),
            on.maint_metrics()
        );

        // Same budget, compaction off: the worst-case admission refuses at
        // this scale and stays refused (the A/B baseline).
        let mut off = build(shortcut_core::CompactionPolicy::disabled());
        let mut k = 0u64;
        while k < n {
            for _ in 0..500 {
                off.insert(k, k + 7).unwrap();
                k += 1;
            }
            if !off.shortcut_suspended() {
                let _ = off.wait_sync(Duration::from_secs(10));
            }
        }
        assert!(off.shortcut_suspended(), "worst-case admission must refuse");
        assert!(off.maint_error().is_none());
        for key in (0..n).step_by(101) {
            assert_eq!(off.get(key), Some(key + 7), "key {key}");
        }
    }

    #[test]
    fn large_slots_serve_through_the_shortcut() {
        // A k=2 (16 KB slot) Shortcut-EH: the published directory's
        // pointer arithmetic must use the layout-derived shift, lookups
        // must be shortcut-served once synced, and the live footprint
        // must undercut the k=0 run by roughly the capacity ratio.
        let build = |k: u32| {
            let mut cfg = fast_cfg();
            cfg.eh.pool.slot_layout = shortcut_rewire::SlotLayout::new(k).unwrap();
            cfg.eh.pool.vma_budget = Some(shortcut_rewire::VmaBudget::with_limit(1_000_000));
            ShortcutEh::try_new(cfg).unwrap()
        };
        let n = 60_000u64;
        let mut base = build(0);
        let mut big = build(2);
        for k in 0..n {
            base.insert(k, k * 3).unwrap();
            big.insert(k, k * 3).unwrap();
        }
        assert!(big.wait_sync(Duration::from_secs(10)), "k=2 never synced");
        assert!(base.wait_sync(Duration::from_secs(10)));
        for k in (0..n).step_by(17) {
            assert_eq!(big.get(k), Some(k * 3), "key {k}");
        }
        let s = big.stats();
        assert!(
            s.shortcut_lookups > s.traditional_lookups,
            "k=2 lookups not shortcut-served: {s:?}"
        );
        // ~4x fewer buckets → at least 2x fewer live mappings (VMAs are
        // slot-denominated, and the k=2 directory is 4x shallower).
        let (b, g) = (base.vma_stats(), big.vma_stats());
        assert!(
            g.live_vmas() * 2 <= b.live_vmas(),
            "live VMAs did not scale down: k=0 {} vs k=2 {}",
            b.live_vmas(),
            g.live_vmas()
        );
        assert_eq!(big.slot_layout().pages_per_slot(), 4);
        assert!(!big.huge_requested());
    }

    #[test]
    fn pool_exhaustion_surfaces_as_typed_error() {
        // A pool whose fixed reservation can hold only a handful of
        // buckets: inserting past it must produce IndexError::Pool — not
        // a panic — and leave every applied entry readable.
        let mut cfg = fast_cfg();
        cfg.eh.pool = PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 8,
            ..PoolConfig::default()
        };
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        let mut applied = 0u64;
        let err = loop {
            match t.insert(applied, applied) {
                Ok(()) => applied += 1,
                Err(e) => break e,
            }
            assert!(applied < 100_000, "exhaustion never surfaced");
        };
        assert!(matches!(err, IndexError::Pool(_)), "{err}");
        for k in 0..applied {
            assert_eq!(t.get(k), Some(k), "entry {k} lost after failed insert");
        }
        // Events from split rounds that succeeded before the failure must
        // still have been relayed: once the mapper drains them, the
        // shortcut is genuinely in sync and agrees with the traditional
        // directory for every applied key.
        assert!(t.wait_sync(Duration::from_secs(10)), "mapper never drained");
        for k in 0..applied {
            let via_shortcut = t.shortcut_get(k, t.eh.dir_hash(k));
            if let Some(res) = via_shortcut {
                assert_eq!(res, Some(k), "shortcut reads pre-split bucket for {k}");
            }
        }
    }
}
