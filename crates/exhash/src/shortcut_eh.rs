//! **Shortcut-EH**: extendible hashing with a page-table shortcut directory
//! (paper §4.1).
//!
//! The traditional directory remains the synchronous source of truth; a
//! shortcut directory replays its modifications **asynchronously** via the
//! mapper thread of [`shortcut_core::Maintainer`]:
//!
//! * bucket split → one *update* request per redirected slot;
//! * directory doubling → pending updates are dropped (superseded) and one
//!   *create* request carries the full slot→page assignment.
//!
//! Lookups route through the shortcut when (a) its version matches the
//! traditional directory's and (b) the average fan-in is at most the
//! routing threshold (default 8, §3.2). A seqlock-style ticket discards
//! results that raced a modification; the fallback is always the
//! traditional directory, so correctness never depends on the mapper.
//!
//! [`Index::get`] takes `&self` and the routing counters are atomics, so
//! any number of threads may share a `&ShortcutEh` and look up concurrently
//! (the type is `Sync`); Rust's aliasing rules guarantee no writer exists
//! while those shared borrows are alive.

use crate::bucket::BucketRef;
use crate::eh::{DirEvent, EhConfig, ExtendibleHash};
use crate::error::IndexError;
use crate::hash::{dir_slot, mult_hash};
use crate::stats::IndexStats;
use crate::traits::Index;
use shortcut_core::{MaintConfig, MaintRequest, Maintainer, RoutePolicy};
use shortcut_rewire::PAGE_SIZE_4K;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shortcut-EH tuning.
#[derive(Debug, Clone, Default)]
pub struct ShortcutEhConfig {
    /// The underlying EH configuration (`track_events` is forced on).
    pub eh: EhConfig,
    /// Mapper-thread configuration (poll interval, eager population).
    pub maint: MaintConfig,
    /// Fan-in routing policy (§3.2; default threshold 8).
    pub policy: RoutePolicy,
}

/// Thread-safe routing counters, bumped from `&self` lookups.
#[derive(Debug, Default)]
struct RouteCounters {
    shortcut_lookups: AtomicU64,
    traditional_lookups: AtomicU64,
    shortcut_retries: AtomicU64,
}

/// The shortcut-enhanced extendible hash table. See module docs.
pub struct ShortcutEh {
    // Field order matters: the maintainer (mapper thread) must stop before
    // the EH (and its page pool) is torn down.
    maint: Maintainer,
    eh: ExtendibleHash,
    policy: RoutePolicy,
    counters: RouteCounters,
}

impl ShortcutEh {
    /// Build with custom configuration and spawn the mapper thread.
    ///
    /// # Errors
    ///
    /// Propagates pool creation / initial-bucket allocation failures from
    /// the underlying EH as [`IndexError::Pool`] — the path that used to
    /// panic when `vm.max_map_count` or the view reservation ran out.
    pub fn try_new(mut cfg: ShortcutEhConfig) -> Result<Self, IndexError> {
        cfg.eh.track_events = true;
        let eh = ExtendibleHash::try_new(cfg.eh)?;
        let maint = Maintainer::spawn(eh.pool_handle(), cfg.maint);
        let this = ShortcutEh {
            maint,
            eh,
            policy: cfg.policy,
            counters: RouteCounters::default(),
        };
        // Publish the initial single-slot directory so the shortcut can
        // serve reads before the first doubling.
        let assignments = this.eh.directory_assignments()?;
        let v = this.maint.state().bump_traditional();
        this.maint.submit(MaintRequest::Create {
            slots: this.eh.dir_slots(),
            assignments,
            version: v,
        });
        Ok(this)
    }

    /// Build with custom configuration, panicking on failure.
    #[deprecated(since = "0.2.0", note = "use the fallible `try_new`")]
    pub fn new(cfg: ShortcutEhConfig) -> Self {
        Self::try_new(cfg).expect("ShortcutEh construction failed")
    }

    /// Build with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Propagates pool creation failure as [`IndexError::Pool`].
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(ShortcutEhConfig::default())
    }

    /// Current (traditional, shortcut) version numbers — the quantities
    /// plotted in Figure 8.
    pub fn versions(&self) -> (u64, u64) {
        let s = self.maint.state();
        (s.traditional_version(), s.shortcut_version())
    }

    /// Whether the shortcut directory is currently in sync.
    pub fn in_sync(&self) -> bool {
        self.maint.state().in_sync()
    }

    /// Block until the shortcut catches up (test/bench helper).
    pub fn wait_sync(&self, timeout: std::time::Duration) -> bool {
        self.maint.wait_sync(timeout)
    }

    /// Structural + routing statistics (merged with the inner EH's).
    pub fn stats(&self) -> IndexStats {
        let mut s = self.eh.stats();
        s.shortcut_lookups = self.counters.shortcut_lookups.load(Ordering::Relaxed);
        s.traditional_lookups = self.counters.traditional_lookups.load(Ordering::Relaxed);
        s.shortcut_retries = self.counters.shortcut_retries.load(Ordering::Relaxed);
        s
    }

    /// Maintenance counters of the mapper thread.
    pub fn maint_metrics(&self) -> shortcut_core::metrics::MaintSnapshot {
        self.maint.metrics()
    }

    /// Operation counters of the backing page pool.
    pub fn pool_stats(&self) -> shortcut_rewire::StatsSnapshot {
        self.eh.pool_stats()
    }

    /// Average directory fan-in.
    pub fn avg_fanin(&self) -> f64 {
        self.eh.avg_fanin()
    }

    /// Global depth of the traditional directory.
    pub fn global_depth(&self) -> u32 {
        self.eh.global_depth()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.eh.bucket_count()
    }

    /// First maintenance error, if the mapper thread failed, wrapped as the
    /// index-level error type.
    pub fn maint_error(&self) -> Option<IndexError> {
        self.maint.error().map(IndexError::Pool)
    }

    /// Shared-reference lookup, kept from the seed API.
    #[deprecated(since = "0.2.0", note = "`Index::get` now takes `&self`; use `get`")]
    pub fn get_ref(&self, key: u64) -> Option<u64> {
        Index::get(self, key)
    }

    /// The shared maintenance state (diagnostics/benchmarks).
    #[doc(hidden)]
    pub fn state_arc(&self) -> std::sync::Arc<shortcut_core::SharedDirectoryState> {
        std::sync::Arc::clone(self.maint.state())
    }

    /// Published shortcut state (base address, slots) if in sync.
    /// For diagnostics and benchmarks only.
    #[doc(hidden)]
    pub fn published_state(&self) -> Option<(usize, usize)> {
        self.maint
            .state()
            .begin_read()
            .map(|t| (t.base as usize, t.slots))
    }

    /// Forward directory events to the mapper queue.
    fn relay_events(&mut self) {
        for ev in self.eh.take_events() {
            match ev {
                DirEvent::SlotUpdated { slot, ppage } => {
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Update {
                        slot,
                        ppage,
                        version: v,
                    });
                }
                DirEvent::Doubled { slots, assignments } => {
                    // Paper: pending updates became outdated; drop them
                    // before enqueueing the create.
                    self.maint.drop_pending();
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Create {
                        slots,
                        assignments,
                        version: v,
                    });
                }
            }
        }
    }

    /// Attempt the lookup through the shortcut directory. The outer `None`
    /// means "not answered" (out of sync, raced, or routed away) — fall
    /// back to the traditional directory.
    ///
    /// Takes `&self`: the hot path must not carry a unique borrow — the
    /// measured cost of the out-of-line variant of this function was ~2x
    /// on the benchmark host (the call boundary blocks hoisting of the
    /// fan-in computation and keeps the seqlock loads from fusing with the
    /// surrounding code). Statistics are bumped by the callers.
    #[inline(always)]
    fn shortcut_get(&self, key: u64, hash: u64) -> Option<Option<u64>> {
        if !self
            .policy
            .use_shortcut(self.eh.avg_fanin(), true /* checked by ticket */)
        {
            return None;
        }
        let state = self.maint.state();
        let t = state.begin_read()?;
        debug_assert!(t.slots.is_power_of_two());
        let g = t.slots.trailing_zeros();
        let slot = dir_slot(hash, g);
        // SAFETY: the published area has t.slots pages; `slot < t.slots`
        // by construction of dir_slot; retired areas stay mapped, so even
        // a racing rebuild leaves this readable.
        let bucket = unsafe { BucketRef::from_ptr(t.base.add(slot * PAGE_SIZE_4K)) };
        let result = bucket.get(key);
        if self.maint.state().still_valid(t) {
            Some(result)
        } else {
            None
        }
    }
}

impl Index for ShortcutEh {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let r = self.eh.insert(key, value);
        // Relay even on error: a multi-round split can apply a first round
        // (moving entries and bumping the traditional directory) before a
        // later round fails. Skipping the relay would leave the shortcut
        // stamped in-sync while pointing at pre-split buckets.
        self.relay_events();
        r
    }

    fn get(&self, key: u64) -> Option<u64> {
        let h = mult_hash(key);
        // Run the hot path through the seqlock-guarded shortcut, then
        // account on the atomic counters.
        if let Some(res) = self.shortcut_get(key, h) {
            self.counters
                .shortcut_lookups
                .fetch_add(1, Ordering::Relaxed);
            return res;
        }
        if self.in_sync() {
            // In sync but unanswered: the ticket raced a modification.
            self.counters
                .shortcut_retries
                .fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .traditional_lookups
            .fetch_add(1, Ordering::Relaxed);
        self.eh.get(key)
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        // Removals mutate bucket *contents*, which both directories alias —
        // no directory change, no maintenance traffic.
        self.eh.remove(key)
    }

    fn len(&self) -> usize {
        self.eh.len()
    }

    fn name(&self) -> &'static str {
        "Shortcut-EH"
    }

    /// Batched lookup with one seqlock ticket per batch: the policy check,
    /// fan-in computation, and the two version validations are paid once
    /// instead of per key. Falls back to the traditional directory for the
    /// whole batch when the shortcut is out of sync or a modification
    /// raced the batch.
    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        if self.policy.use_shortcut(self.eh.avg_fanin(), true) {
            if let Some(t) = self.maint.state().begin_read() {
                debug_assert!(t.slots.is_power_of_two());
                let g = t.slots.trailing_zeros();
                let out: Vec<Option<u64>> = keys
                    .iter()
                    .map(|&k| {
                        let slot = dir_slot(mult_hash(k), g);
                        // SAFETY: see `shortcut_get` — slot < t.slots and
                        // retired areas stay mapped.
                        let bucket =
                            unsafe { BucketRef::from_ptr(t.base.add(slot * PAGE_SIZE_4K)) };
                        bucket.get(k)
                    })
                    .collect();
                if self.maint.state().still_valid(t) {
                    self.counters
                        .shortcut_lookups
                        .fetch_add(keys.len() as u64, Ordering::Relaxed);
                    return out;
                }
                // The whole batch raced a modification; count one retry
                // (one discarded ticket) and re-answer traditionally.
                self.counters
                    .shortcut_retries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.counters
            .traditional_lookups
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        keys.iter().map(|&k| self.eh.get(k)).collect()
    }

    /// Batched insert that relays directory events to the mapper once per
    /// batch instead of once per key, shrinking producer-side overhead
    /// during insert storms.
    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        for &(k, v) in entries {
            if let Err(e) = self.eh.insert(k, v) {
                // Relay what already happened so the shortcut still
                // converges on the applied prefix.
                self.relay_events();
                return Err(e);
            }
        }
        self.relay_events();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::PoolConfig;
    use std::time::Duration;

    fn fast_cfg() -> ShortcutEhConfig {
        ShortcutEhConfig {
            eh: EhConfig {
                pool: PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: 16,
                    view_capacity_pages: 1 << 16,
                    ..PoolConfig::default()
                },
                ..EhConfig::default()
            },
            maint: MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
            policy: RoutePolicy::default(),
        }
    }

    #[test]
    fn basic_roundtrip() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.get(3), None);
        assert_eq!(t.remove(1).unwrap(), Some(10));
        assert_eq!(t.get(1), None);
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn bulk_insert_then_synced_lookups() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let n = 20_000u64;
        for k in 0..n {
            t.insert(k, k + 3).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        assert!(t.in_sync());
        let (tv, sv) = t.versions();
        assert_eq!(tv, sv);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k + 3), "key {k}");
        }
        // With fan-in 1-ish and in-sync state, the shortcut must have
        // served the bulk of the lookups.
        let s = t.stats();
        assert!(
            s.shortcut_lookups > s.traditional_lookups,
            "shortcut {} vs traditional {}",
            s.shortcut_lookups,
            s.traditional_lookups
        );
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn lookups_correct_even_while_out_of_sync() {
        // Slow mapper: the shortcut lags; every lookup must still be right.
        let mut cfg = fast_cfg();
        cfg.maint.poll_interval = Duration::from_millis(200);
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        for k in 0..5_000u64 {
            t.insert(k, k).unwrap();
            if k % 97 == 0 {
                // Interleaved lookups during the insert storm.
                assert_eq!(t.get(k), Some(k));
                assert_eq!(t.get(k + 1_000_000), None);
            }
        }
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), Some(k), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn shortcut_matches_traditional_for_every_key() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k * 7).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        // Compare the shortcut path against the traditional path directly.
        for k in (0..10_000u64).step_by(37) {
            let h = mult_hash(k);
            let via_shortcut = t.shortcut_get(k, h).expect("in sync");
            let via_traditional = t.eh.get(k);
            assert_eq!(via_shortcut, via_traditional, "key {k}");
        }
    }

    #[test]
    fn get_many_agrees_with_get() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        for k in 0..8_000u64 {
            t.insert(k, !k).unwrap();
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        let keys: Vec<u64> = (0..8_200).collect();
        let batched = t.get_many(&keys);
        assert_eq!(batched.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batched[i], t.get(k), "key {k}");
        }
        // The synced batch must have been answered via the shortcut.
        let s = t.stats();
        assert!(s.shortcut_lookups >= keys.len() as u64);
    }

    #[test]
    fn insert_batch_relays_to_the_mapper() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let entries: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k * 3)).collect();
        t.insert_batch(&entries).unwrap();
        assert_eq!(t.len(), entries.len());
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        for &(k, v) in entries.iter().step_by(61) {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn versions_advance_with_structure() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        let (tv0, _) = t.versions();
        for k in 0..1_000u64 {
            t.insert(k, k).unwrap();
        }
        let (tv1, _) = t.versions();
        assert!(tv1 > tv0, "splits/doublings must bump the version");
        assert!(t.wait_sync(Duration::from_secs(10)));
        let (tv2, sv2) = t.versions();
        assert_eq!(tv2, sv2);
    }

    #[test]
    fn high_fanin_routes_traditionally() {
        // Policy with threshold 0 → never use the shortcut.
        let mut cfg = fast_cfg();
        cfg.policy = RoutePolicy::with_threshold(0.0);
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(t.get(k), Some(k));
        }
        let s = t.stats();
        assert_eq!(s.shortcut_lookups, 0);
        assert_eq!(s.traditional_lookups, 100);
    }

    #[test]
    fn len_and_updates() {
        let mut t = ShortcutEh::try_new(fast_cfg()).unwrap();
        t.insert(9, 1).unwrap();
        t.insert(9, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(9), Some(2));
    }

    #[test]
    fn pool_exhaustion_surfaces_as_typed_error() {
        // A pool whose fixed reservation can hold only a handful of
        // buckets: inserting past it must produce IndexError::Pool — not
        // a panic — and leave every applied entry readable.
        let mut cfg = fast_cfg();
        cfg.eh.pool = PoolConfig {
            initial_pages: 1,
            min_growth_pages: 1,
            view_capacity_pages: 8,
            ..PoolConfig::default()
        };
        let mut t = ShortcutEh::try_new(cfg).unwrap();
        let mut applied = 0u64;
        let err = loop {
            match t.insert(applied, applied) {
                Ok(()) => applied += 1,
                Err(e) => break e,
            }
            assert!(applied < 100_000, "exhaustion never surfaced");
        };
        assert!(matches!(err, IndexError::Pool(_)), "{err}");
        for k in 0..applied {
            assert_eq!(t.get(k), Some(k), "entry {k} lost after failed insert");
        }
        // Events from split rounds that succeeded before the failure must
        // still have been relayed: once the mapper drains them, the
        // shortcut is genuinely in sync and agrees with the traditional
        // directory for every applied key.
        assert!(t.wait_sync(Duration::from_secs(10)), "mapper never drained");
        for k in 0..applied {
            let via_shortcut = t.shortcut_get(k, mult_hash(k));
            if let Some(res) = via_shortcut {
                assert_eq!(res, Some(k), "shortcut reads pre-split bucket for {k}");
            }
        }
    }
}
