//! **Shortcut-EH**: extendible hashing with a page-table shortcut directory
//! (paper §4.1).
//!
//! The traditional directory remains the synchronous source of truth; a
//! shortcut directory replays its modifications **asynchronously** via the
//! mapper thread of [`shortcut_core::Maintainer`]:
//!
//! * bucket split → one *update* request per redirected slot;
//! * directory doubling → pending updates are dropped (superseded) and one
//!   *create* request carries the full slot→page assignment.
//!
//! Lookups route through the shortcut when (a) its version matches the
//! traditional directory's and (b) the average fan-in is at most the
//! routing threshold (default 8, §3.2). A seqlock-style ticket discards
//! results that raced a modification; the fallback is always the
//! traditional directory, so correctness never depends on the mapper.

use crate::bucket::BucketRef;
use crate::eh::{DirEvent, EhConfig, ExtendibleHash};
use crate::hash::{dir_slot, mult_hash};
use crate::stats::IndexStats;
use crate::traits::KvIndex;
use shortcut_core::{MaintConfig, MaintRequest, Maintainer, RoutePolicy};
use shortcut_rewire::PAGE_SIZE_4K;

/// Shortcut-EH tuning.
#[derive(Debug, Clone, Default)]
pub struct ShortcutEhConfig {
    /// The underlying EH configuration (`track_events` is forced on).
    pub eh: EhConfig,
    /// Mapper-thread configuration (poll interval, eager population).
    pub maint: MaintConfig,
    /// Fan-in routing policy (§3.2; default threshold 8).
    pub policy: RoutePolicy,
}

/// The shortcut-enhanced extendible hash table. See module docs.
pub struct ShortcutEh {
    // Field order matters: the maintainer (mapper thread) must stop before
    // the EH (and its page pool) is torn down.
    maint: Maintainer,
    eh: ExtendibleHash,
    policy: RoutePolicy,
    stats: IndexStats,
}

impl ShortcutEh {
    /// Build with custom configuration and spawn the mapper thread.
    pub fn new(mut cfg: ShortcutEhConfig) -> Self {
        cfg.eh.track_events = true;
        let eh = ExtendibleHash::new(cfg.eh);
        let maint = Maintainer::spawn(eh.pool_handle(), cfg.maint);
        let this = ShortcutEh {
            maint,
            eh,
            policy: cfg.policy,
            stats: IndexStats::default(),
        };
        // Publish the initial single-slot directory so the shortcut can
        // serve reads before the first doubling.
        let assignments = this.eh.directory_assignments();
        let v = this.maint.state().bump_traditional();
        this.maint.submit(MaintRequest::Create {
            slots: this.eh.dir_slots(),
            assignments,
            version: v,
        });
        this
    }

    /// Build with the paper's defaults.
    pub fn with_defaults() -> Self {
        Self::new(ShortcutEhConfig::default())
    }

    /// Current (traditional, shortcut) version numbers — the quantities
    /// plotted in Figure 8.
    pub fn versions(&self) -> (u64, u64) {
        let s = self.maint.state();
        (s.traditional_version(), s.shortcut_version())
    }

    /// Whether the shortcut directory is currently in sync.
    pub fn in_sync(&self) -> bool {
        self.maint.state().in_sync()
    }

    /// Block until the shortcut catches up (test/bench helper).
    pub fn wait_sync(&self, timeout: std::time::Duration) -> bool {
        self.maint.wait_sync(timeout)
    }

    /// Structural + routing statistics (merged with the inner EH's).
    pub fn stats(&self) -> IndexStats {
        let mut s = self.eh.stats();
        s.shortcut_lookups = self.stats.shortcut_lookups;
        s.traditional_lookups = self.stats.traditional_lookups;
        s.shortcut_retries = self.stats.shortcut_retries;
        s
    }

    /// Maintenance counters of the mapper thread.
    pub fn maint_metrics(&self) -> shortcut_core::metrics::MaintSnapshot {
        self.maint.metrics()
    }

    /// Average directory fan-in.
    pub fn avg_fanin(&self) -> f64 {
        self.eh.avg_fanin()
    }

    /// Global depth of the traditional directory.
    pub fn global_depth(&self) -> u32 {
        self.eh.global_depth()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.eh.bucket_count()
    }

    /// First maintenance error, if the mapper thread failed.
    pub fn maint_error(&self) -> Option<shortcut_rewire::Error> {
        self.maint.error()
    }

    /// Shared-reference lookup for concurrent read-only phases.
    ///
    /// Takes `&self`, so the borrow checker guarantees no writer exists
    /// while readers run — multiple threads may call this simultaneously
    /// (e.g. via `std::thread::scope`). Routing works like [`KvIndex::get`]
    /// minus the statistics (which would need `&mut`).
    pub fn get_ref(&self, key: u64) -> Option<u64> {
        let hash = mult_hash(key);
        if let Some(res) = self.shortcut_get(key, hash) {
            return res;
        }
        self.eh.get_ref(key)
    }

    /// The shared maintenance state (diagnostics/benchmarks).
    #[doc(hidden)]
    pub fn state_arc(&self) -> std::sync::Arc<shortcut_core::SharedDirectoryState> {
        std::sync::Arc::clone(self.maint.state())
    }

    /// Published shortcut state (base address, slots) if in sync.
    /// For diagnostics and benchmarks only.
    #[doc(hidden)]
    pub fn published_state(&self) -> Option<(usize, usize)> {
        self.maint
            .state()
            .begin_read()
            .map(|t| (t.base as usize, t.slots))
    }

    /// Forward directory events to the mapper queue.
    fn relay_events(&mut self) {
        for ev in self.eh.take_events() {
            match ev {
                DirEvent::SlotUpdated { slot, ppage } => {
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Update {
                        slot,
                        ppage,
                        version: v,
                    });
                }
                DirEvent::Doubled { slots, assignments } => {
                    // Paper: pending updates became outdated; drop them
                    // before enqueueing the create.
                    self.maint.drop_pending();
                    let v = self.maint.state().bump_traditional();
                    self.maint.submit(MaintRequest::Create {
                        slots,
                        assignments,
                        version: v,
                    });
                }
            }
        }
    }

    /// Attempt the lookup through the shortcut directory. The outer `None`
    /// means "not answered" (out of sync, raced, or routed away) — fall
    /// back to the traditional directory.
    ///
    /// Takes `&self`: the hot path must not carry a unique borrow — the
    /// measured cost of the out-of-line variant of this function was ~2x
    /// on the benchmark host (the call boundary blocks hoisting of the
    /// fan-in computation and keeps the seqlock loads from fusing with the
    /// surrounding code). Statistics are bumped by the callers.
    #[inline(always)]
    fn shortcut_get(&self, key: u64, hash: u64) -> Option<Option<u64>> {
        if !self
            .policy
            .use_shortcut(self.eh.avg_fanin(), true /* checked by ticket */)
        {
            return None;
        }
        let state = self.maint.state();
        let t = state.begin_read()?;
        debug_assert!(t.slots.is_power_of_two());
        let g = t.slots.trailing_zeros();
        let slot = dir_slot(hash, g);
        // SAFETY: the published area has t.slots pages; `slot < t.slots`
        // by construction of dir_slot; retired areas stay mapped, so even
        // a racing rebuild leaves this readable.
        let bucket = unsafe { BucketRef::from_ptr(t.base.add(slot * PAGE_SIZE_4K)) };
        let result = bucket.get(key);
        if self.maint.state().still_valid(t) {
            Some(result)
        } else {
            None
        }
    }
}

impl KvIndex for ShortcutEh {
    fn insert(&mut self, key: u64, value: u64) {
        self.eh.insert(key, value);
        self.relay_events();
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let h = mult_hash(key);
        // Run the hot path through a shared borrow (see shortcut_get), then
        // account.
        if let Some(res) = self.shortcut_get(key, h) {
            self.stats.shortcut_lookups += 1;
            return res;
        }
        if self.in_sync() {
            // In sync but unanswered: the ticket raced a modification.
            self.stats.shortcut_retries += 1;
        }
        self.stats.traditional_lookups += 1;
        self.eh.get(key)
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        // Removals mutate bucket *contents*, which both directories alias —
        // no directory change, no maintenance traffic.
        self.eh.remove(key)
    }

    fn len(&self) -> usize {
        self.eh.len()
    }

    fn name(&self) -> &'static str {
        "Shortcut-EH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcut_rewire::PoolConfig;
    use std::time::Duration;

    fn fast_cfg() -> ShortcutEhConfig {
        ShortcutEhConfig {
            eh: EhConfig {
                pool: PoolConfig {
                    initial_pages: 1,
                    min_growth_pages: 16,
                    view_capacity_pages: 1 << 16,
                    ..PoolConfig::default()
                },
                ..EhConfig::default()
            },
            maint: MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..MaintConfig::default()
            },
            policy: RoutePolicy::default(),
        }
    }

    #[test]
    fn basic_roundtrip() {
        let mut t = ShortcutEh::new(fast_cfg());
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.get(3), None);
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.get(1), None);
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn bulk_insert_then_synced_lookups() {
        let mut t = ShortcutEh::new(fast_cfg());
        let n = 20_000u64;
        for k in 0..n {
            t.insert(k, k + 3);
        }
        assert!(t.wait_sync(Duration::from_secs(10)), "never synced");
        assert!(t.in_sync());
        let (tv, sv) = t.versions();
        assert_eq!(tv, sv);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k + 3), "key {k}");
        }
        // With fan-in 1-ish and in-sync state, the shortcut must have
        // served the bulk of the lookups.
        let s = t.stats();
        assert!(
            s.shortcut_lookups > s.traditional_lookups,
            "shortcut {} vs traditional {}",
            s.shortcut_lookups,
            s.traditional_lookups
        );
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn lookups_correct_even_while_out_of_sync() {
        // Slow mapper: the shortcut lags; every lookup must still be right.
        let mut cfg = fast_cfg();
        cfg.maint.poll_interval = Duration::from_millis(200);
        let mut t = ShortcutEh::new(cfg);
        for k in 0..5_000u64 {
            t.insert(k, k);
            if k % 97 == 0 {
                // Interleaved lookups during the insert storm.
                assert_eq!(t.get(k), Some(k));
                assert_eq!(t.get(k + 1_000_000), None);
            }
        }
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), Some(k), "key {k}");
        }
        assert!(t.maint_error().is_none());
    }

    #[test]
    fn shortcut_matches_traditional_for_every_key() {
        let mut t = ShortcutEh::new(fast_cfg());
        for k in 0..10_000u64 {
            t.insert(k, k * 7);
        }
        assert!(t.wait_sync(Duration::from_secs(10)));
        // Compare the shortcut path against the traditional path directly.
        for k in (0..10_000u64).step_by(37) {
            let h = mult_hash(k);
            let via_shortcut = t.shortcut_get(k, h).expect("in sync");
            let via_traditional = t.eh.get(k);
            assert_eq!(via_shortcut, via_traditional, "key {k}");
        }
    }

    #[test]
    fn versions_advance_with_structure() {
        let mut t = ShortcutEh::new(fast_cfg());
        let (tv0, _) = t.versions();
        for k in 0..1_000u64 {
            t.insert(k, k);
        }
        let (tv1, _) = t.versions();
        assert!(tv1 > tv0, "splits/doublings must bump the version");
        assert!(t.wait_sync(Duration::from_secs(10)));
        let (tv2, sv2) = t.versions();
        assert_eq!(tv2, sv2);
    }

    #[test]
    fn high_fanin_routes_traditionally() {
        // Policy with threshold 0 → never use the shortcut.
        let mut cfg = fast_cfg();
        cfg.policy = RoutePolicy::with_threshold(0.0);
        let mut t = ShortcutEh::new(cfg);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        for k in 0..100u64 {
            assert_eq!(t.get(k), Some(k));
        }
        let s = t.stats();
        assert_eq!(s.shortcut_lookups, 0);
        assert_eq!(s.traditional_lookups, 100);
    }

    #[test]
    fn len_and_updates() {
        let mut t = ShortcutEh::new(fast_cfg());
        t.insert(9, 1);
        t.insert(9, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(9), Some(2));
    }
}
