//! **CH**: chained hashing with a fixed-size table and 128 B overflow
//! buckets, searched linearly (paper §4.2).
//!
//! The table never resizes; a slot holds an entry inline, and overflowing
//! entries go to a linked chain of fixed-size buckets. CH "shows the best
//! insertion time, as it does not perform any rehashing at all" but pays
//! for chain traversal on lookups — exactly the Figure 7 trade-off.

use crate::error::IndexError;
use crate::hash::bucket_slot_hash;
use crate::stats::IndexStats;
use crate::traits::Index;

/// Entries per 128 B chain bucket: 7 × 16 B entries + count + next pointer.
const CHAIN_CAPACITY: usize = 7;

/// CH tuning.
#[derive(Debug, Clone, Copy)]
pub struct ChConfig {
    /// Number of inline table slots. The paper grants CH a 1 GB table
    /// (2²⁶ slots × 16 B); scaled runs use proportionally fewer.
    pub table_slots: usize,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            table_slots: 1 << 26,
        }
    }
}

/// A 128 B overflow bucket: seven entries and a link.
struct ChainBucket {
    keys: [u64; CHAIN_CAPACITY],
    values: [u64; CHAIN_CAPACITY],
    occupied: u8, // bitmask over the 7 entry slots
    next: Option<Box<ChainBucket>>,
}

impl ChainBucket {
    fn new() -> Box<Self> {
        Box::new(ChainBucket {
            keys: [0; CHAIN_CAPACITY],
            values: [0; CHAIN_CAPACITY],
            occupied: 0,
            next: None,
        })
    }
}

/// The CH baseline. See module docs.
pub struct ChainedHash {
    keys: Vec<u64>,
    values: Vec<u64>,
    /// Bit i of word i/64: inline slot occupied.
    occupied: Vec<u64>,
    chains: Vec<Option<Box<ChainBucket>>>,
    mask: usize,
    live: usize,
    stats: IndexStats,
}

impl ChainedHash {
    /// Build with custom configuration (slot count rounded up to a power
    /// of two).
    ///
    /// # Errors
    ///
    /// Rejects a zero slot count.
    pub fn try_new(cfg: ChConfig) -> Result<Self, IndexError> {
        if cfg.table_slots == 0 {
            return Err(IndexError::config("table_slots must be > 0"));
        }
        let slots = cfg.table_slots.next_power_of_two();
        Ok(ChainedHash {
            keys: vec![0; slots],
            values: vec![0; slots],
            occupied: vec![0; slots.div_ceil(64)],
            chains: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            live: 0,
            stats: IndexStats::default(),
        })
    }

    /// Build with the paper's 1 GB table.
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration; fallible for signature
    /// uniformity with the pool-backed schemes.
    pub fn with_defaults() -> Result<Self, IndexError> {
        Self::try_new(ChConfig::default())
    }

    /// Structural statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (bucket_slot_hash(key) as usize) & self.mask
    }

    #[inline]
    fn inline_occupied(&self, slot: usize) -> bool {
        self.occupied[slot / 64] >> (slot % 64) & 1 == 1
    }

    #[inline]
    fn set_inline_occupied(&mut self, slot: usize, on: bool) {
        let mask = 1u64 << (slot % 64);
        if on {
            self.occupied[slot / 64] |= mask;
        } else {
            self.occupied[slot / 64] &= !mask;
        }
    }
}

impl Index for ChainedHash {
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError> {
        let slot = self.slot_of(key);
        let inline_free = !self.inline_occupied(slot);
        if !inline_free && self.keys[slot] == key {
            self.values[slot] = value;
            return Ok(());
        }
        // Walk the chain first: the key may live there even when the inline
        // slot is free (a remove can vacate the inline entry while chained
        // entries for other keys — or this key — remain).
        let mut hole: Option<(*mut ChainBucket, usize)> = None;
        let mut cur = self.chains[slot].as_deref_mut();
        let mut last: *mut ChainBucket = std::ptr::null_mut();
        while let Some(b) = cur {
            last = b as *mut ChainBucket;
            for i in 0..CHAIN_CAPACITY {
                if b.occupied >> i & 1 == 1 {
                    if b.keys[i] == key {
                        b.values[i] = value;
                        return Ok(());
                    }
                } else if hole.is_none() {
                    hole = Some((b as *mut ChainBucket, i));
                }
            }
            cur = b.next.as_deref_mut();
        }
        // Not found anywhere: prefer the inline slot, then a chain hole,
        // then a fresh chain bucket.
        if inline_free {
            self.keys[slot] = key;
            self.values[slot] = value;
            self.set_inline_occupied(slot, true);
            self.live += 1;
            return Ok(());
        }
        if let Some((bptr, i)) = hole {
            // SAFETY: bptr points into a chain owned by self; no aliasing
            // (the walk above has ended).
            let b = unsafe { &mut *bptr };
            b.keys[i] = key;
            b.values[i] = value;
            b.occupied |= 1 << i;
            self.live += 1;
            return Ok(());
        }
        // Append a fresh bucket: to the chain tail, or start the chain.
        let mut fresh = ChainBucket::new();
        fresh.keys[0] = key;
        fresh.values[0] = value;
        fresh.occupied = 1;
        self.stats.chain_buckets += 1;
        self.live += 1;
        if last.is_null() {
            self.chains[slot] = Some(fresh);
        } else {
            // SAFETY: last points to the final bucket of self's chain.
            unsafe {
                (*last).next = Some(fresh);
            }
        }
        Ok(())
    }

    fn get(&self, key: u64) -> Option<u64> {
        let slot = self.slot_of(key);
        if self.inline_occupied(slot) && self.keys[slot] == key {
            return Some(self.values[slot]);
        }
        let mut cur = self.chains[slot].as_deref();
        while let Some(b) = cur {
            for i in 0..CHAIN_CAPACITY {
                if b.occupied >> i & 1 == 1 && b.keys[i] == key {
                    return Some(b.values[i]);
                }
            }
            cur = b.next.as_deref();
        }
        None
    }

    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError> {
        let slot = self.slot_of(key);
        if self.inline_occupied(slot) && self.keys[slot] == key {
            self.set_inline_occupied(slot, false);
            self.live -= 1;
            return Ok(Some(self.values[slot]));
        }
        let mut cur = self.chains[slot].as_deref_mut();
        while let Some(b) = cur {
            for i in 0..CHAIN_CAPACITY {
                if b.occupied >> i & 1 == 1 && b.keys[i] == key {
                    b.occupied &= !(1 << i);
                    self.live -= 1;
                    return Ok(Some(b.values[i]));
                }
            }
            cur = b.next.as_deref_mut();
        }
        Ok(None)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn name(&self) -> &'static str {
        "CH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChainedHash {
        ChainedHash::try_new(ChConfig { table_slots: 16 }).unwrap()
    }

    #[test]
    fn inline_roundtrip() {
        let mut t = small();
        t.insert(1, 10).unwrap();
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.remove(1).unwrap(), Some(10));
        assert_eq!(t.get(1), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn zero_slots_is_a_typed_error() {
        assert!(matches!(
            ChainedHash::try_new(ChConfig { table_slots: 0 }),
            Err(IndexError::Config { .. })
        ));
    }

    #[test]
    fn collisions_chain_and_stay_findable() {
        let mut t = small();
        // With 16 slots, 500 keys force heavy chaining.
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.stats().chain_buckets > 0);
        for k in 0..500u64 {
            assert_eq!(t.get(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn update_inline_and_chained() {
        let mut t = small();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..100u64 {
            t.insert(k, k + 1000).unwrap();
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            assert_eq!(t.get(k), Some(k + 1000));
        }
    }

    #[test]
    fn remove_from_chain_leaves_rest() {
        let mut t = small();
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(t.remove(k).unwrap(), Some(k));
        }
        assert_eq!(t.len(), 100);
        for k in 0..200u64 {
            let want = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(t.get(k), want, "key {k}");
        }
    }

    #[test]
    fn holes_in_chains_are_refilled() {
        let mut t = small();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        let buckets_before = t.stats().chain_buckets;
        for k in 0..50u64 {
            t.remove(k).unwrap();
        }
        for k in 1000..1050u64 {
            t.insert(k, k).unwrap();
        }
        // Reuse of holes means no (or few) new chain buckets.
        assert_eq!(t.stats().chain_buckets, buckets_before);
        for k in 1000..1050u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn key_zero_inline_and_chained() {
        let mut t = ChainedHash::try_new(ChConfig { table_slots: 1 }).unwrap();
        t.insert(0, 7).unwrap();
        for k in 1..20u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.get(0), Some(7));
        assert_eq!(t.len(), 20);
    }
}
