//! Operational statistics common to the hashing schemes.

/// Counters describing the structural work an index performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Bucket splits (EH family).
    pub splits: u64,
    /// Directory doublings (EH family).
    pub doublings: u64,
    /// Full-table rehashes (HT).
    pub full_rehashes: u64,
    /// Entries migrated incrementally (HTI).
    pub migrated_entries: u64,
    /// Overflow chain buckets allocated (CH).
    pub chain_buckets: u64,
    /// Completed bucket-layout compaction passes (EH family; full
    /// rebuild-time passes plus finished incremental plans).
    pub compactions: u64,
    /// Bucket pages physically relocated into directory order.
    pub pages_moved: u64,
    /// Compaction passes skipped (target run did not fit the pool, or the
    /// layout was already as compact as the fan-in permits).
    pub compaction_skipped: u64,
    /// Lookups answered via the shortcut directory (Shortcut-EH).
    pub shortcut_lookups: u64,
    /// Lookups answered via the traditional directory (Shortcut-EH).
    pub traditional_lookups: u64,
    /// Shortcut reads that had to be discarded after the seqlock recheck.
    pub shortcut_retries: u64,
}
