//! Operational statistics common to the hashing schemes.

/// Counters describing the structural work an index performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Bucket splits (EH family).
    pub splits: u64,
    /// Directory doublings (EH family).
    pub doublings: u64,
    /// Full-table rehashes (HT).
    pub full_rehashes: u64,
    /// Entries migrated incrementally (HTI).
    pub migrated_entries: u64,
    /// Overflow chain buckets allocated (CH).
    pub chain_buckets: u64,
    /// Completed bucket-layout compaction passes (EH family; full
    /// rebuild-time passes plus finished incremental plans).
    pub compactions: u64,
    /// Bucket pages physically relocated into directory order.
    pub pages_moved: u64,
    /// Compaction passes skipped (target run did not fit the pool, or the
    /// layout was already as compact as the fan-in permits).
    pub compaction_skipped: u64,
    /// Lookups answered via the shortcut directory (Shortcut-EH).
    pub shortcut_lookups: u64,
    /// Lookups answered via the traditional directory (Shortcut-EH).
    pub traditional_lookups: u64,
    /// Shortcut reads that had to be discarded after the seqlock recheck.
    pub shortcut_retries: u64,
}

impl IndexStats {
    /// Merge two indexes' statistics (the sharded index aggregates one
    /// set per shard). Every field is a monotone event counter, so the
    /// merge **sums** them all; there are no gauges here.
    pub fn merge(&self, other: &IndexStats) -> IndexStats {
        IndexStats {
            splits: self.splits + other.splits,
            doublings: self.doublings + other.doublings,
            full_rehashes: self.full_rehashes + other.full_rehashes,
            migrated_entries: self.migrated_entries + other.migrated_entries,
            chain_buckets: self.chain_buckets + other.chain_buckets,
            compactions: self.compactions + other.compactions,
            pages_moved: self.pages_moved + other.pages_moved,
            compaction_skipped: self.compaction_skipped + other.compaction_skipped,
            shortcut_lookups: self.shortcut_lookups + other.shortcut_lookups,
            traditional_lookups: self.traditional_lookups + other.traditional_lookups,
            shortcut_retries: self.shortcut_retries + other.shortcut_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let a = IndexStats {
            splits: 4,
            doublings: 2,
            shortcut_lookups: 100,
            ..IndexStats::default()
        };
        let b = IndexStats {
            splits: 1,
            traditional_lookups: 7,
            shortcut_lookups: 50,
            ..IndexStats::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.splits, 5);
        assert_eq!(m.doublings, 2);
        assert_eq!(m.shortcut_lookups, 150);
        assert_eq!(m.traditional_lookups, 7);
        assert_eq!(m, b.merge(&a));
    }
}
