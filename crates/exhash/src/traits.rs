//! The common key-value index interface all five schemes implement.
//!
//! [`Index`] is the two-layer contract of the redesigned API:
//!
//! * **Reads take `&self`.** Any number of threads may share an index and
//!   look up concurrently (Shortcut-EH routes such reads through its
//!   seqlock-protected shortcut directory); per-read bookkeeping uses
//!   interior mutability. Schemes whose reads are *not* thread-safe (HTI
//!   migrates entries on every access through a `RefCell`) are simply
//!   `!Sync`, so the compiler — not a comment — enforces the difference.
//! * **Writes take `&mut self` and are fallible.** Inserts may grow a page
//!   pool or double a directory; those paths surface a typed
//!   [`IndexError`] instead of panicking deep inside an allocation.
//!
//! Batched entry points ([`Index::get_many`], [`Index::insert_batch`]) have
//! loop defaults; schemes override them when a batch can amortize real work
//! (Shortcut-EH validates one seqlock ticket per batch instead of per key).

use crate::error::IndexError;

/// A key-value index over `u64 → u64` with shared-reader lookups and
/// fallible writes. See the module docs for the contract.
pub trait Index {
    /// Insert or update a key.
    ///
    /// # Errors
    ///
    /// Returns an [`IndexError`] when backing storage cannot grow (pool or
    /// `mmap` failure, directory depth cap). The index stays consistent:
    /// a failed insert leaves all previously inserted entries readable.
    fn insert(&mut self, key: u64, value: u64) -> Result<(), IndexError>;

    /// Look up a key.
    ///
    /// Takes `&self`: on `Sync` schemes (notably Shortcut-EH) any number of
    /// threads may call this concurrently while no writer exists.
    fn get(&self, key: u64) -> Option<u64>;

    /// Remove a key, returning its value.
    ///
    /// # Errors
    ///
    /// Reserved for schemes whose removals must touch fallible storage;
    /// the five built-in schemes currently never fail here.
    fn remove(&mut self, key: u64) -> Result<Option<u64>, IndexError>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name ("HT", "HTI", "CH", "EH", "Shortcut-EH").
    fn name(&self) -> &'static str;

    /// Look up a batch of keys; `out[i]` answers `keys[i]`.
    ///
    /// The default loops over [`Index::get`]. Schemes override this when a
    /// batch amortizes per-lookup overhead.
    fn get_many(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|&k| self.get(k)).collect()
    }

    /// Insert a batch of `(key, value)` pairs, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first failing insert; entries before it are applied.
    fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<(), IndexError> {
        for &(k, v) in entries {
            self.insert(k, v)?;
        }
        Ok(())
    }

    /// Remove a batch of keys; `out[i]` is the value `keys[i]` held (the
    /// same answer shape as [`Index::get_many`]). Duplicate keys in one
    /// batch behave like sequential removes: the first occurrence takes
    /// the value, later ones see `None`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing remove; keys before it stay removed.
    fn remove_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IndexError> {
        keys.iter().map(|&k| self.remove(k)).collect()
    }
}

// The seed's `KvIndex` shim (panic-on-error writes, `&mut self` reads)
// lived here as a blanket impl for one release after the 0.2.0 API
// redesign; it was removed in 0.3.0 along with the deprecated panicking
// `new` constructors. Migrate via `Index`: reads take `&self`, writes
// return `Result<_, IndexError>`.
