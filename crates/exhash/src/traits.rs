//! The common key-value index interface all five schemes implement.

/// A mutable key-value index over `u64 → u64`.
///
/// `get` takes `&mut self` because HTI performs migration work on *every*
/// access (Redis semantics) and Shortcut-EH updates routing statistics.
pub trait KvIndex {
    /// Insert or update a key.
    fn insert(&mut self, key: u64, value: u64);

    /// Look up a key.
    fn get(&mut self, key: u64) -> Option<u64>;

    /// Remove a key, returning its value.
    fn remove(&mut self, key: u64) -> Option<u64>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name ("HT", "HTI", "CH", "EH", "Shortcut-EH").
    fn name(&self) -> &'static str;
}
