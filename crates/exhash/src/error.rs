//! The unified error type of the index layer.
//!
//! Every fallible index operation — construction, inserts that may grow the
//! bucket pool or double the directory, batch writes — reports an
//! [`IndexError`]. Substrate failures ([`shortcut_rewire::Error`], e.g. an
//! `mmap` hitting `vm.max_map_count`, or a pool exhausting its virtual
//! reservation) are wrapped rather than unwrapped, so callers can match on
//! the `errno`-carrying cause instead of getting a panic out of a deep
//! allocation path.

use std::fmt;

/// Errors produced by index construction and write operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The rewiring substrate failed (pool growth, `mmap`, `ftruncate`, …).
    ///
    /// The classic production case: `mmap` returning `ENOMEM` because
    /// `vm.max_map_count` is exhausted, or the pool hitting its fixed
    /// virtual reservation ([`shortcut_rewire::Error::BadResize`]).
    Pool(shortcut_rewire::Error),
    /// The directory would exceed its configured maximum global depth
    /// (a guard against pathological key distributions exhausting memory).
    DepthLimit {
        /// The configured cap that would have been crossed.
        max_global_depth: u32,
    },
    /// A configuration value was rejected up front.
    Config {
        /// Human-readable description of the violated precondition.
        what: String,
    },
}

impl IndexError {
    /// Convenience constructor for configuration errors.
    pub(crate) fn config(what: impl Into<String>) -> Self {
        IndexError::Config { what: what.into() }
    }
}

impl From<shortcut_rewire::Error> for IndexError {
    fn from(e: shortcut_rewire::Error) -> Self {
        IndexError::Pool(e)
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Pool(e) => write!(f, "page pool failure: {e}"),
            IndexError::DepthLimit { max_global_depth } => write!(
                f,
                "directory would exceed max_global_depth={max_global_depth} \
                 (pathological key distribution?)"
            ),
            IndexError::Config { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Pool(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_rewire_errors_with_source() {
        let cause = shortcut_rewire::Error::BadResize {
            current: 4,
            requested: 5,
        };
        let e = IndexError::from(cause.clone());
        assert_eq!(e, IndexError::Pool(cause));
        assert!(e.source().is_some(), "cause must be preserved");
        assert!(e.to_string().contains("pool"), "{e}");
    }

    #[test]
    fn display_depth_limit_names_the_cap() {
        let e = IndexError::DepthLimit {
            max_global_depth: 28,
        };
        assert!(e.to_string().contains("28"), "{e}");
    }

    #[test]
    fn display_config() {
        let e = IndexError::config("load factor too small");
        assert!(e.to_string().contains("load factor too small"));
    }
}
