//! The shared lightweight multiplicative hash.
//!
//! All five schemes use the same hash function for comparability (paper
//! §4.2). Extendible hashing consumes the **most significant bits** for the
//! directory slot, so a multiplicative (Fibonacci) hash — whose high bits
//! are the well-mixed ones — is the natural fit. In-bucket open addressing
//! uses a second multiplicative constant (Shortcut-EH "has to compute two
//! hashes: directory slot and bucket slot").

/// 2^64 / φ, the classic Fibonacci-hashing constant.
pub const MULT_CONST: u64 = 0x9E37_79B9_7F4A_7C15;

/// Second constant for the in-bucket slot hash (from MurmurHash2's mixer).
pub const BUCKET_CONST: u64 = 0xC6A4_A793_5BD1_E995;

/// The primary multiplicative hash: high bits are well mixed.
#[inline(always)]
pub fn mult_hash(key: u64) -> u64 {
    key.wrapping_mul(MULT_CONST)
}

/// Secondary hash used to choose a starting slot inside a bucket or
/// open-addressing table.
#[inline(always)]
pub fn bucket_slot_hash(key: u64) -> u64 {
    key.wrapping_mul(BUCKET_CONST)
}

/// Directory slot for a hash under `global_depth`: the top `global_depth`
/// bits. Depth 0 always maps to slot 0.
#[inline(always)]
pub fn dir_slot(hash: u64, global_depth: u32) -> usize {
    if global_depth == 0 {
        0
    } else {
        (hash >> (64 - global_depth)) as usize
    }
}

/// The `depth`-th most significant bit of `hash` (0-indexed): the bit that
/// decides which side of a split an entry lands on when local depth grows
/// from `depth` to `depth + 1`.
#[inline(always)]
pub fn split_bit(hash: u64, depth: u32) -> bool {
    debug_assert!(depth < 64);
    (hash >> (63 - depth)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_slot_depth_zero_is_zero() {
        assert_eq!(dir_slot(u64::MAX, 0), 0);
        assert_eq!(dir_slot(0, 0), 0);
    }

    #[test]
    fn dir_slot_uses_top_bits() {
        // hash with top bit set -> upper half of the directory.
        let h = 1u64 << 63;
        assert_eq!(dir_slot(h, 1), 1);
        assert_eq!(dir_slot(h, 2), 0b10);
        assert_eq!(dir_slot(!0, 3), 0b111);
        assert_eq!(dir_slot(0, 8), 0);
    }

    #[test]
    fn split_bit_extracts_msb_first() {
        let h = 0b1010u64 << 60;
        assert!(split_bit(h, 0));
        assert!(!split_bit(h, 1));
        assert!(split_bit(h, 2));
        assert!(!split_bit(h, 3));
    }

    #[test]
    fn dir_slot_consistent_with_split_bit() {
        // Doubling rule: slot at depth g+1 = (slot at depth g) * 2 + split_bit(g).
        for key in [0u64, 1, 42, 0xdead_beef, u64::MAX / 3] {
            let h = mult_hash(key);
            for g in 0..16 {
                let s_g = dir_slot(h, g);
                let s_g1 = dir_slot(h, g + 1);
                let bit = split_bit(h, g) as usize;
                assert_eq!(s_g1, s_g * 2 + bit, "key {key} depth {g}");
            }
        }
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential keys must land in different directory slots (this is
        // exactly why a multiplicative hash is used).
        let mut slots = std::collections::HashSet::new();
        for k in 0..1000u64 {
            slots.insert(dir_slot(mult_hash(k), 10));
        }
        assert!(slots.len() > 500, "only {} distinct slots", slots.len());
    }

    #[test]
    fn two_hashes_disagree() {
        // The directory hash and bucket hash must be independent enough
        // that equal directory prefixes do not imply equal bucket slots.
        let a = 123u64;
        let b = 456u64;
        assert_ne!(mult_hash(a), bucket_slot_hash(a));
        assert_ne!(
            bucket_slot_hash(a) % 251,
            bucket_slot_hash(b) % 251,
            "chosen example keys should differ (not a property, a sanity check)"
        );
    }
}
