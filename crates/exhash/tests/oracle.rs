//! Property tests: every hashing scheme against a `std::HashMap` oracle,
//! and all five schemes against each other.

use proptest::prelude::*;
use shortcut_exhash::{
    ChConfig, ChainedHash, EhConfig, ExtendibleHash, HashTable, HtConfig, HtiConfig,
    IncrementalHashTable, KvIndex, ShortcutEh, ShortcutEhConfig,
};
use shortcut_rewire::PoolConfig;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
}

fn ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..max_key, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            3 => (0..max_key).prop_map(Op::Get),
            1 => (0..max_key).prop_map(Op::Remove),
        ],
        1..len,
    )
}

fn check_against_oracle(index: &mut dyn KvIndex, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                index.insert(k, v);
                oracle.insert(k, v);
            }
            Op::Get(k) => {
                prop_assert_eq!(index.get(k), oracle.get(&k).copied(), "get({}) diverged", k);
            }
            Op::Remove(k) => {
                prop_assert_eq!(index.remove(k), oracle.remove(&k), "remove({}) diverged", k);
            }
        }
        prop_assert_eq!(index.len(), oracle.len());
    }
    // Final sweep: every oracle key present, a sample of absent keys absent.
    for (&k, &v) in &oracle {
        prop_assert_eq!(index.get(k), Some(v), "final get({}) diverged", k);
    }
    Ok(())
}

fn small_eh_config() -> EhConfig {
    EhConfig {
        pool: PoolConfig {
            initial_pages: 1,
            min_growth_pages: 8,
            view_capacity_pages: 1 << 16,
            ..PoolConfig::default()
        },
        ..EhConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ht_matches_oracle(ops in ops(512, 400)) {
        let mut t = HashTable::new(HtConfig { initial_capacity: 16, max_load_factor: 0.35 });
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn hti_matches_oracle(ops in ops(512, 400), batch in 1usize..16) {
        let mut t = IncrementalHashTable::new(HtiConfig {
            initial_capacity: 16,
            max_load_factor: 0.35,
            migration_batch: batch,
        });
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn ch_matches_oracle(ops in ops(512, 400)) {
        let mut t = ChainedHash::new(ChConfig { table_slots: 32 });
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn eh_matches_oracle(ops in ops(2048, 500)) {
        let mut t = ExtendibleHash::new(small_eh_config());
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn shortcut_eh_matches_oracle(ops in ops(2048, 400)) {
        let mut t = ShortcutEh::new(ShortcutEhConfig {
            eh: small_eh_config(),
            maint: shortcut_core::MaintConfig {
                poll_interval: Duration::from_millis(1),
                ..Default::default()
            },
            ..Default::default()
        });
        check_against_oracle(&mut t, &ops)?;
        prop_assert!(t.maint_error().is_none());
    }

    #[test]
    fn all_schemes_agree(ops in ops(1024, 250)) {
        let mut indexes: Vec<Box<dyn KvIndex>> = vec![
            Box::new(HashTable::new(HtConfig { initial_capacity: 16, max_load_factor: 0.35 })),
            Box::new(IncrementalHashTable::new(HtiConfig {
                initial_capacity: 16,
                max_load_factor: 0.35,
                migration_batch: 8,
            })),
            Box::new(ChainedHash::new(ChConfig { table_slots: 64 })),
            Box::new(ExtendibleHash::new(small_eh_config())),
        ];
        for op in &ops {
            match *op {
                Op::Insert(k, v) => indexes.iter_mut().for_each(|t| t.insert(k, v)),
                Op::Get(k) => {
                    let answers: Vec<_> = indexes.iter_mut().map(|t| t.get(k)).collect();
                    for w in answers.windows(2) {
                        prop_assert_eq!(w[0], w[1], "schemes disagree on get({})", k);
                    }
                }
                Op::Remove(k) => {
                    let answers: Vec<_> = indexes.iter_mut().map(|t| t.remove(k)).collect();
                    for w in answers.windows(2) {
                        prop_assert_eq!(w[0], w[1], "schemes disagree on remove({})", k);
                    }
                }
            }
            let lens: Vec<_> = indexes.iter().map(|t| t.len()).collect();
            for w in lens.windows(2) {
                prop_assert_eq!(w[0], w[1]);
            }
        }
    }
}

#[test]
fn duplicate_heavy_workload() {
    // Many updates to few keys across all schemes.
    let mut schemes: Vec<Box<dyn KvIndex>> = vec![
        Box::new(HashTable::with_defaults()),
        Box::new(IncrementalHashTable::with_defaults()),
        Box::new(ChainedHash::new(ChConfig { table_slots: 256 })),
        Box::new(ExtendibleHash::new(small_eh_config())),
    ];
    for t in &mut schemes {
        for round in 0..100u64 {
            for k in 0..10u64 {
                t.insert(k, round * 100 + k);
            }
        }
        assert_eq!(t.len(), 10, "{}", t.name());
        for k in 0..10u64 {
            assert_eq!(t.get(k), Some(99 * 100 + k), "{} key {k}", t.name());
        }
    }
}
