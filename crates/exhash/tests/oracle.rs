//! Property tests: every hashing scheme against a `std::HashMap` oracle,
//! and all five schemes against each other — driven entirely through
//! `Box<dyn Index>` trait objects, the way a storage engine would hold
//! them. Also covers the error path: an index whose pool cannot grow must
//! surface a typed `IndexError`, never panic.

use proptest::prelude::*;
use shortcut_exhash::{
    ChConfig, ChainedHash, EhConfig, ExtendibleHash, HashTable, HtConfig, HtiConfig,
    IncrementalHashTable, Index, IndexError, ShortcutEh, ShortcutEhConfig,
};
use shortcut_rewire::PoolConfig;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
}

fn ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..max_key, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            3 => (0..max_key).prop_map(Op::Get),
            1 => (0..max_key).prop_map(Op::Remove),
        ],
        1..len,
    )
}

fn check_against_oracle(index: &mut dyn Index, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                index.insert(k, v).expect("insert failed");
                oracle.insert(k, v);
            }
            Op::Get(k) => {
                prop_assert_eq!(index.get(k), oracle.get(&k).copied(), "get({}) diverged", k);
            }
            Op::Remove(k) => {
                prop_assert_eq!(
                    index.remove(k).expect("remove failed"),
                    oracle.remove(&k),
                    "remove({}) diverged",
                    k
                );
            }
        }
        prop_assert_eq!(index.len(), oracle.len());
    }
    // Final sweep: every oracle key present — once via single gets, once
    // via the batched entry point (both must agree with the oracle).
    let keys: Vec<u64> = oracle.keys().copied().collect();
    let batched = index.get_many(&keys);
    for (i, &k) in keys.iter().enumerate() {
        let want = oracle.get(&k).copied();
        prop_assert_eq!(index.get(k), want, "final get({}) diverged", k);
        prop_assert_eq!(batched[i], want, "final get_many({}) diverged", k);
    }
    Ok(())
}

fn small_eh_config() -> EhConfig {
    EhConfig {
        pool: PoolConfig {
            initial_pages: 1,
            min_growth_pages: 8,
            view_capacity_pages: 1 << 16,
            ..PoolConfig::default()
        },
        ..EhConfig::default()
    }
}

fn small_shortcut_config() -> ShortcutEhConfig {
    ShortcutEhConfig {
        eh: small_eh_config(),
        maint: shortcut_core::MaintConfig {
            poll_interval: Duration::from_millis(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// All five schemes, freshly built, behind the trait object a storage
/// engine would hold.
fn all_five() -> Vec<Box<dyn Index>> {
    vec![
        Box::new(
            HashTable::try_new(HtConfig {
                initial_capacity: 16,
                max_load_factor: 0.35,
            })
            .unwrap(),
        ),
        Box::new(
            IncrementalHashTable::try_new(HtiConfig {
                initial_capacity: 16,
                max_load_factor: 0.35,
                migration_batch: 8,
            })
            .unwrap(),
        ),
        Box::new(ChainedHash::try_new(ChConfig { table_slots: 64 }).unwrap()),
        Box::new(ExtendibleHash::try_new(small_eh_config()).unwrap()),
        Box::new(ShortcutEh::try_new(small_shortcut_config()).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ht_matches_oracle(ops in ops(512, 400)) {
        let mut t = HashTable::try_new(HtConfig { initial_capacity: 16, max_load_factor: 0.35 }).unwrap();
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn hti_matches_oracle(ops in ops(512, 400), batch in 1usize..16) {
        let mut t = IncrementalHashTable::try_new(HtiConfig {
            initial_capacity: 16,
            max_load_factor: 0.35,
            migration_batch: batch,
        }).unwrap();
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn ch_matches_oracle(ops in ops(512, 400)) {
        let mut t = ChainedHash::try_new(ChConfig { table_slots: 32 }).unwrap();
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn eh_matches_oracle(ops in ops(2048, 500)) {
        let mut t = ExtendibleHash::try_new(small_eh_config()).unwrap();
        check_against_oracle(&mut t, &ops)?;
    }

    #[test]
    fn shortcut_eh_matches_oracle(ops in ops(2048, 400)) {
        let mut t = ShortcutEh::try_new(small_shortcut_config()).unwrap();
        check_against_oracle(&mut t, &ops)?;
        prop_assert!(t.maint_error().is_none());
    }

    #[test]
    fn all_five_schemes_agree_as_trait_objects(ops in ops(1024, 250)) {
        let mut indexes = all_five();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    for t in indexes.iter_mut() {
                        t.insert(k, v).expect("insert failed");
                    }
                }
                Op::Get(k) => {
                    let answers: Vec<_> = indexes.iter().map(|t| t.get(k)).collect();
                    for w in answers.windows(2) {
                        prop_assert_eq!(w[0], w[1], "schemes disagree on get({})", k);
                    }
                }
                Op::Remove(k) => {
                    let answers: Vec<_> = indexes
                        .iter_mut()
                        .map(|t| t.remove(k).expect("remove failed"))
                        .collect();
                    for w in answers.windows(2) {
                        prop_assert_eq!(w[0], w[1], "schemes disagree on remove({})", k);
                    }
                }
            }
            let lens: Vec<_> = indexes.iter().map(|t| t.len()).collect();
            for w in lens.windows(2) {
                prop_assert_eq!(w[0], w[1]);
            }
        }
    }
}

#[test]
fn duplicate_heavy_workload() {
    // Many updates to few keys across all five schemes.
    for t in &mut all_five() {
        for round in 0..100u64 {
            for k in 0..10u64 {
                t.insert(k, round * 100 + k).expect("insert failed");
            }
        }
        assert_eq!(t.len(), 10, "{}", t.name());
        for k in 0..10u64 {
            assert_eq!(t.get(k), Some(99 * 100 + k), "{} key {k}", t.name());
        }
    }
}

#[test]
fn batched_writes_match_loop_writes_across_schemes() {
    let entries: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k % 700, k)).collect();
    for (mut batched, mut looped) in all_five().into_iter().zip(all_five()) {
        batched
            .insert_batch(&entries)
            .expect("batched insert failed");
        for &(k, v) in &entries {
            looped.insert(k, v).expect("insert failed");
        }
        assert_eq!(batched.len(), looped.len(), "{}", batched.name());
        let keys: Vec<u64> = (0..750).collect();
        assert_eq!(
            batched.get_many(&keys),
            looped.get_many(&keys),
            "{}",
            batched.name()
        );
    }
}

#[test]
fn exhausted_pool_yields_typed_error_not_panic() {
    // A pool with a tiny fixed reservation: the EH family must hit
    // IndexError::Pool once splitting needs pages beyond the cap, and the
    // entries applied before the failure must all stay readable.
    let tiny_pool = PoolConfig {
        initial_pages: 1,
        min_growth_pages: 1,
        view_capacity_pages: 8,
        ..PoolConfig::default()
    };
    let mut schemes: Vec<Box<dyn Index>> = vec![
        Box::new(
            ExtendibleHash::try_new(EhConfig {
                pool: tiny_pool.clone(),
                ..EhConfig::default()
            })
            .unwrap(),
        ),
        Box::new(
            ShortcutEh::try_new(ShortcutEhConfig {
                eh: EhConfig {
                    pool: tiny_pool,
                    ..EhConfig::default()
                },
                ..Default::default()
            })
            .unwrap(),
        ),
    ];
    for index in schemes.iter_mut() {
        let mut applied = 0u64;
        let err = loop {
            match index.insert(applied, applied * 2) {
                Ok(()) => applied += 1,
                Err(e) => break e,
            }
            assert!(
                applied < 100_000,
                "{}: exhaustion never surfaced",
                index.name()
            );
        };
        assert!(
            matches!(err, IndexError::Pool(_)),
            "{}: unexpected error {err}",
            index.name()
        );
        assert!(applied > 0, "{}: nothing was applied", index.name());
        for k in 0..applied {
            assert_eq!(index.get(k), Some(k * 2), "{} entry {k}", index.name());
        }
    }
}

#[test]
fn constructor_failure_is_typed_not_panic() {
    // A zero-sized view reservation is rejected by the pool up front; the
    // index constructors must hand that back as IndexError::Pool.
    let bad = EhConfig {
        pool: PoolConfig {
            view_capacity_pages: 0,
            ..PoolConfig::default()
        },
        ..EhConfig::default()
    };
    assert!(matches!(
        ExtendibleHash::try_new(bad.clone()),
        Err(IndexError::Pool(_))
    ));
    assert!(matches!(
        ShortcutEh::try_new(ShortcutEhConfig {
            eh: bad,
            ..Default::default()
        }),
        Err(IndexError::Pool(_))
    ));
}
