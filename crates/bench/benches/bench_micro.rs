//! Micro-benchmarks of the substrate pieces: hash, bucket ops, pool
//! alloc/free, rewiring, and the vmsim MMU fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use shortcut_exhash::{bucket_slot_hash, mult_hash, BucketLayout, BucketRef, BUCKET_CAPACITY};
use shortcut_rewire::{PageIdx, PagePool, PoolConfig, VirtArea};
use shortcut_vmsim::{AddressSpace, Mmu, VirtAddr};
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    c.bench_function("micro/mult_hash", |b| {
        let mut k = 1u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(mult_hash(k) ^ bucket_slot_hash(k))
        })
    });
}

fn bench_bucket(c: &mut Criterion) {
    let mut mem = vec![0u8; 4096 + 8];
    let off = mem.as_ptr().align_offset(8);
    let ptr = unsafe { mem.as_mut_ptr().add(off) };
    let bucket = unsafe { BucketRef::from_ptr(ptr, BucketLayout::base()) };
    bucket.init(0);
    for k in 0..80u64 {
        bucket.insert(k, k, BUCKET_CAPACITY);
    }
    c.bench_function("micro/bucket_get_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 80;
            black_box(bucket.get(k))
        })
    });
    c.bench_function("micro/bucket_get_miss", |b| {
        let mut k = 1_000_000u64;
        b.iter(|| {
            k += 1;
            black_box(bucket.get(k))
        })
    });
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("micro/pool_alloc_free", |b| {
        let mut pool = PagePool::new(PoolConfig {
            initial_pages: 1024,
            view_capacity_pages: 4096,
            shrink_threshold_pages: usize::MAX,
            ..PoolConfig::default()
        })
        .unwrap();
        b.iter(|| {
            let p = pool.alloc_page().unwrap();
            pool.free_page(p).unwrap();
            black_box(p)
        })
    });
}

fn bench_rewire(c: &mut Criterion) {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 8,
        view_capacity_pages: 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let a = pool.alloc_page().unwrap();
    let b_page = pool.alloc_page().unwrap();
    let mut area = VirtArea::reserve(1).unwrap();
    c.bench_function("micro/rewire_single_page", |b| {
        let mut flip = false;
        b.iter(|| {
            let target = if flip { a } else { b_page };
            flip = !flip;
            area.rewire(0, &handle, target).unwrap();
            black_box(target)
        })
    });
    let _ = PageIdx(0);
}

fn bench_vmsim(c: &mut Criterion) {
    let mut aspace = AddressSpace::new();
    let addr = aspace.mmap_anon(64);
    for i in 0..64 {
        aspace.populate(addr.vpn().add(i)).unwrap();
    }
    let mut mmu = Mmu::with_defaults();
    c.bench_function("micro/vmsim_tlb_hit_access", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(
                mmu.access(&mut aspace, VirtAddr(addr.0 + i * 4096))
                    .unwrap()
                    .ns,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_hash, bench_bucket, bench_pool, bench_rewire, bench_vmsim
}
criterion_main!(benches);
