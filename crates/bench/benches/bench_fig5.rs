//! Criterion micro-version of Figure 5 on the deterministic vmsim model:
//! remap cost with and without remote TLB holders.

use criterion::{criterion_group, criterion_main, Criterion};
use shortcut_vmsim::{CoreId, Machine, MachineConfig, VirtAddr};

fn machine(pages: usize) -> (Machine, VirtAddr, shortcut_vmsim::address_space::FileId) {
    let mut m = Machine::new(MachineConfig {
        cores: 8,
        ..MachineConfig::default()
    });
    let file = m.aspace.create_file();
    m.aspace.resize_file(file, pages * 2).unwrap();
    let addr = m.aspace.mmap_anon(pages);
    m.aspace
        .mmap_file_fixed(addr, pages, file, 0, true)
        .unwrap();
    (m, addr, file)
}

fn bench(c: &mut Criterion) {
    let pages = 1 << 10;
    let mut g = c.benchmark_group("fig5_shootdown_model");

    g.bench_function("remap_no_holders", |b| {
        let (mut m, addr, file) = machine(pages);
        let mut i = 0usize;
        b.iter(|| {
            let v = VirtAddr(addr.0 + ((i % pages) as u64) * 4096);
            i += 1;
            m.remap_from_core(CoreId(0), v, 1, file, (i * 7) % pages, true)
                .unwrap()
        })
    });

    g.bench_function("remap_seven_holders", |b| {
        let (mut m, addr, file) = machine(pages);
        let mut i = 0usize;
        b.iter(|| {
            let v = VirtAddr(addr.0 + ((i % pages) as u64) * 4096);
            // All remote cores warm the translation first.
            for core in 1..8 {
                m.access(CoreId(core), v).unwrap();
            }
            i += 1;
            m.remap_from_core(CoreId(0), v, 1, file, (i * 7) % pages, true)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
