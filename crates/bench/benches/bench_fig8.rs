//! Criterion micro-version of Figure 8: mixed-workload batch (1% inserts,
//! 99% lookups) on EH vs Shortcut-EH.

use criterion::{criterion_group, criterion_main, Criterion};
use shortcut_bench::workload::KeyGen;
use shortcut_exhash::{EhConfig, ExtendibleHash, Index, ShortcutEh, ShortcutEhConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let bulk = 100_000;
    let mut gen = KeyGen::new(42);
    let keys = gen.uniform_keys(bulk);
    let fresh = gen.uniform_keys(1 << 20);
    let probes = gen.hits_from(&keys, 990);

    let mut g = c.benchmark_group("fig8_mixed_batch");
    g.sample_size(20);

    let mut eh = ExtendibleHash::try_new(EhConfig::default()).unwrap();
    for &k in &keys {
        eh.insert(k, k).unwrap();
    }
    let mut cursor = 0usize;
    g.bench_function("EH", |b| {
        b.iter(|| {
            for _ in 0..10 {
                eh.insert(fresh[cursor % fresh.len()], 1).unwrap();
                cursor += 1;
            }
            let mut found = 0u64;
            for &k in &probes {
                if eh.get(k).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });

    let mut sceh = ShortcutEh::try_new(ShortcutEhConfig::default()).unwrap();
    for &k in &keys {
        sceh.insert(k, k).unwrap();
    }
    sceh.wait_sync(std::time::Duration::from_secs(30));
    let mut cursor = 0usize;
    g.bench_function("Shortcut-EH", |b| {
        b.iter(|| {
            for _ in 0..10 {
                sceh.insert(fresh[cursor % fresh.len()], 1).unwrap();
                cursor += 1;
            }
            let mut found = 0u64;
            for &k in &probes {
                if sceh.get(k).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench
}
criterion_main!(benches);
