//! Criterion micro-version of Table 1: the cost of setting indirections
//! (pointer store vs rewiring mmap) and of population.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::{PageIdx, PagePool, PoolConfig};

fn pool_with_run(pages: usize) -> (PagePool, PageIdx) {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 0,
        min_growth_pages: pages,
        view_capacity_pages: pages + 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let run = pool.alloc_run(pages).unwrap();
    (pool, run)
}

fn bench(c: &mut Criterion) {
    let n = 1 << 10;
    let (pool, run) = pool_with_run(n);
    let handle = pool.handle();

    let mut g = c.benchmark_group("table1_set_indirections");
    g.bench_function("traditional_pointer_store", |b| {
        b.iter_batched(
            || TraditionalNode::new(n),
            |mut node| {
                for i in 0..n {
                    node.set_slot(i, pool.page_ptr(PageIdx(run.0 + i)));
                }
                node
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("shortcut_rewire_per_slot", |b| {
        b.iter_batched(
            || ShortcutNode::new(n).unwrap(),
            |mut node| {
                for i in 0..n {
                    node.set_slot(i, &handle, PageIdx(run.0 + i)).unwrap();
                }
                node
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("shortcut_populate_by_touch", |b| {
        b.iter_batched(
            || {
                let mut node = ShortcutNode::new(n).unwrap();
                node.set_run(0, &handle, run, n).unwrap();
                node
            },
            |node| {
                node.populate();
                node
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
