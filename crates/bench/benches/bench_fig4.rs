//! Criterion micro-version of Figure 4: lookup cost vs fan-in for both
//! node variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shortcut_bench::workload::KeyGen;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::{PageIdx, PagePool, PoolConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let slots = 1 << 16;
    let mut g = c.benchmark_group("fig4_fanin");
    for fanin in [1usize, 16, 256] {
        let leaves = slots / fanin;
        let mut pool = PagePool::new(PoolConfig {
            initial_pages: 0,
            min_growth_pages: leaves,
            view_capacity_pages: leaves + 64,
            ..PoolConfig::default()
        })
        .unwrap();
        let handle = pool.handle();
        let run = pool.alloc_run(leaves).unwrap();
        let mut trad = TraditionalNode::new(slots);
        for i in 0..slots {
            trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i / fanin)));
        }
        let mut short = ShortcutNode::new_populated(slots).unwrap();
        let assignments: Vec<_> = (0..slots)
            .map(|i| (i, PageIdx(run.0 + i / fanin)))
            .collect();
        short.set_batch(&handle, &assignments).unwrap();
        short.populate();
        let idx = KeyGen::new(42).indices(slots, 4096);

        g.bench_with_input(BenchmarkId::new("traditional", fanin), &fanin, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                for &i in &idx {
                    sum = sum.wrapping_add(unsafe { *(trad.get(i as usize) as *const u64) });
                }
                black_box(sum)
            })
        });
        let base = short.base();
        g.bench_with_input(BenchmarkId::new("shortcut", fanin), &fanin, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                for &i in &idx {
                    sum =
                        sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
