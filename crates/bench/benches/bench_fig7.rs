//! Criterion micro-version of Figure 7: insert and lookup throughput of
//! all five hashing schemes at a small scale.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use shortcut_bench::experiments::fig7::build_schemes;
use shortcut_bench::workload::KeyGen;
use std::hint::black_box;

fn bench_inserts(c: &mut Criterion) {
    let n = 50_000;
    let keys = KeyGen::new(42).uniform_keys(n);
    let mut g = c.benchmark_group("fig7a_insert");
    g.sample_size(10);
    for scheme_idx in 0..5 {
        let name = build_schemes(n)[scheme_idx].name();
        g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut v = build_schemes(n);
                    v.swap(0, scheme_idx);
                    v.truncate(1);
                    v.pop().unwrap()
                },
                |mut index| {
                    for &k in &keys {
                        index.insert(k, k).unwrap();
                    }
                    index
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let n = 50_000;
    let mut gen = KeyGen::new(42);
    let keys = gen.uniform_keys(n);
    let probes = gen.hits_from(&keys, 10_000);
    let mut g = c.benchmark_group("fig7b_lookup");
    g.sample_size(10);
    for scheme_idx in 0..5 {
        let mut index = {
            let mut v = build_schemes(n);
            v.swap(0, scheme_idx);
            v.truncate(1);
            v.pop().unwrap()
        };
        for &k in &keys {
            index.insert(k, k).unwrap();
        }
        if index.name() == "Shortcut-EH" {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        g.bench_with_input(BenchmarkId::new(index.name(), n), &n, |b, _| {
            b.iter(|| {
                let mut found = 0u64;
                for &k in &probes {
                    if index.get(k).is_some() {
                        found += 1;
                    }
                }
                black_box(found)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_inserts, bench_lookups
}
criterion_main!(benches);
