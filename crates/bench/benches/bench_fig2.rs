//! Criterion micro-version of Figure 2: traditional vs shortcut inner-node
//! access at a single (scaled-down) size point.

use criterion::{criterion_group, criterion_main, Criterion};
use shortcut_bench::workload::KeyGen;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::{PageIdx, PagePool, PoolConfig};
use std::hint::black_box;

fn setup(slots: usize) -> (PagePool, TraditionalNode, ShortcutNode) {
    let mut pool = PagePool::new(PoolConfig {
        initial_pages: 0,
        min_growth_pages: slots,
        view_capacity_pages: slots + 64,
        ..PoolConfig::default()
    })
    .unwrap();
    let handle = pool.handle();
    let run = pool.alloc_run(slots).unwrap();
    for i in 0..slots {
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = i as u64;
        }
    }
    let mut trad = TraditionalNode::new(slots);
    for i in 0..slots {
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i)));
    }
    let mut short = ShortcutNode::new_populated(slots).unwrap();
    let assignments: Vec<_> = (0..slots).map(|i| (i, PageIdx(run.0 + i))).collect();
    short.set_batch(&handle, &assignments).unwrap();
    short.populate();
    (pool, trad, short)
}

fn bench(c: &mut Criterion) {
    let slots = 1 << 16;
    let (_pool, trad, short) = setup(slots);
    let idx = KeyGen::new(42).indices(slots, 4096);

    let mut g = c.benchmark_group("fig2_random_access");
    g.bench_function("traditional", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &i in &idx {
                sum = sum.wrapping_add(unsafe { *(trad.get(i as usize) as *const u64) });
            }
            black_box(sum)
        })
    });
    let base = short.base();
    g.bench_function("shortcut", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &i in &idx {
                sum = sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
            }
            black_box(sum)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
