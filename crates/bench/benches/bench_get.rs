//! PR 10's headline microbench: single-key in-sync `get` through the
//! facade, across the read-path matrix —
//!
//! * slot size `k ∈ {0, 4}` (4 KB and 64 KB buckets: the SIMD probe's
//!   win grows with bucket capacity),
//! * pin strategy: auto-detected (asymmetric where membarrier works)
//!   versus builder-forced Dekker (the RMW fallback every read used to
//!   pay),
//!
//! plus the batched `get_many` path at the same slot sizes. The probe
//! backend is process-global (`SHORTCUT_PROBE=scalar|sse2|avx2`), so the
//! before/after of the vector kernels is captured by re-running this
//! bench under the override rather than by a third axis here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use taking_the_shortcut::{PinStrategy, ShortcutIndex};

const ENTRIES: u64 = 200_000;

fn build(k: u32, pin: Option<PinStrategy>) -> ShortcutIndex {
    let mut b = ShortcutIndex::builder()
        .capacity(ENTRIES as usize)
        .slot_pages(k)
        .poll_interval(Duration::from_millis(1))
        .vma_budget(1_000_000);
    if let Some(s) = pin {
        b = b.pin_strategy(s);
    }
    let mut index = b.build().expect("build index");
    let mut key = 0u64;
    while key < ENTRIES {
        let batch: Vec<(u64, u64)> = (key..key + 10_000).map(|x| (x, x ^ 0xC0FFEE)).collect();
        index.insert_batch(&batch).expect("insert");
        key += 10_000;
    }
    assert!(
        index.wait_sync(Duration::from_secs(60)),
        "shortcut never synced"
    );
    index
}

fn bench_get_single(c: &mut Criterion) {
    for k in [0u32, 4] {
        for (tag, pin) in [("auto", None), ("dekker", Some(PinStrategy::Dekker))] {
            let index = build(k, pin);
            let name = format!(
                "get/k{k}/pin_{tag}/probe_{}",
                taking_the_shortcut::probe_backend().name()
            );
            c.bench_function(&name, |b| {
                let mut x = 0x243F_6A88_85A3_08D3u64; // xorshift state
                b.iter(|| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    black_box(index.get(x % ENTRIES))
                })
            });
        }
    }
}

fn bench_get_many(c: &mut Criterion) {
    for k in [0u32, 4] {
        let index = build(k, None);
        let keys: Vec<u64> = {
            let mut x = 0x1319_8A2E_0370_7344u64;
            (0..1024)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % ENTRIES
                })
                .collect()
        };
        let name = format!(
            "get_many1024/k{k}/probe_{}",
            taking_the_shortcut::probe_backend().name()
        );
        c.bench_function(&name, |b| b.iter(|| black_box(index.get_many(&keys))));
    }
}

criterion_group!(benches, bench_get_single, bench_get_many);
criterion_main!(benches);
