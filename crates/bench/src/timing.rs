//! Wall-clock helpers.

use std::time::{Duration, Instant};

/// A simple stopwatch with phase support.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start (or last lap).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time and reset.
    pub fn lap(&mut self) -> Duration {
        let d = self.start.elapsed();
        self.start = Instant::now();
        d
    }

    /// Time a closure, returning (duration, result).
    pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
        let t = Instant::now();
        let r = f();
        (t.elapsed(), r)
    }
}

/// Milliseconds as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Microseconds as f64.
pub fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Per-item microseconds.
pub fn us_per(d: Duration, items: usize) -> f64 {
    if items == 0 {
        0.0
    } else {
        us(d) / items as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reports_result() {
        let (d, v) = Stopwatch::time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn unit_conversions() {
        let d = Duration::from_millis(1500);
        assert!((ms(d) - 1500.0).abs() < 1e-9);
        assert!((us(d) - 1_500_000.0).abs() < 1e-6);
        assert!((us_per(d, 1000) - 1500.0).abs() < 1e-9);
        assert_eq!(us_per(d, 0), 0.0);
    }

    #[test]
    fn lap_resets() {
        let mut s = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = s.lap();
        let second = s.elapsed();
        assert!(first >= Duration::from_millis(2));
        assert!(second < first);
    }
}
