//! Plain-text table rendering for experiment output.

/// A column-aligned table printed to stdout (and capturable as a string).
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: format a float with 2 decimals.
    pub fn f(x: f64) -> String {
        format!("{x:.2}")
    }

    /// Convenience: format an integer with thousands separators.
    pub fn n(x: u64) -> String {
        let s = x.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.row(&["1".into(), "10.00".into()]);
        t.row(&["100".into(), "3.14".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("|   x | value |"));
        assert!(s.contains("| 100 |  3.14 |"));
    }

    #[test]
    fn thousands_separator() {
        assert_eq!(Table::n(1), "1");
        assert_eq!(Table::n(1234), "1,234");
        assert_eq!(Table::n(1234567), "1,234,567");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
