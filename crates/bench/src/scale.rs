//! Shared CLI argument handling for the experiment binaries.

/// Scaling options parsed from the command line.
///
/// * *(default)* — cardinalities sized for an 8 GB-RSS, minutes-long run.
/// * `--paper-scale` — the paper's original cardinalities (needs a 32 GB
///   class machine and patience).
/// * `--quick` — tiny smoke-test sizes (seconds; used by CI).
/// * `--scale <divisor>` — divide the default cardinalities further.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleArgs {
    /// Divisor applied to default cardinalities.
    pub scale: usize,
    /// Use the paper's original cardinalities.
    pub paper: bool,
    /// Smoke-test mode.
    pub quick: bool,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        ScaleArgs {
            scale: 1,
            paper: false,
            quick: false,
        }
    }
}

impl ScaleArgs {
    /// Parse from an iterator of CLI arguments (panics on malformed input
    /// with a usage message — these are benchmark binaries).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = ScaleArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper-scale" => out.paper = true,
                "--quick" => out.quick = true,
                "--scale" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| panic!("--scale needs a value"));
                    out.scale = v
                        .parse()
                        .unwrap_or_else(|_| panic!("--scale needs an integer, got {v}"));
                    assert!(out.scale >= 1, "--scale must be >= 1");
                }
                "--help" | "-h" => {
                    println!(
                        "options: [--paper-scale] [--quick] [--scale <divisor>]\n\
                         default: mid-size run; --paper-scale: original cardinalities;\n\
                         --quick: smoke test; --scale N: divide default sizes by N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other} (try --help)"),
            }
        }
        out
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Pick a cardinality: `paper` under `--paper-scale`, `quick` under
    /// `--quick`, else `default / scale`.
    pub fn pick(&self, paper: usize, default: usize, quick: usize) -> usize {
        if self.paper {
            paper
        } else if self.quick {
            quick
        } else {
            (default / self.scale).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ScaleArgs {
        ScaleArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let s = parse(&[]);
        assert_eq!(s, ScaleArgs::default());
        assert_eq!(s.pick(100, 10, 1), 10);
    }

    #[test]
    fn paper_scale() {
        let s = parse(&["--paper-scale"]);
        assert!(s.paper);
        assert_eq!(s.pick(100, 10, 1), 100);
    }

    #[test]
    fn quick() {
        let s = parse(&["--quick"]);
        assert_eq!(s.pick(100, 10, 1), 1);
    }

    #[test]
    fn scale_divides() {
        let s = parse(&["--scale", "5"]);
        assert_eq!(s.pick(100, 10, 1), 2);
        // Never zero.
        assert_eq!(s.pick(100, 3, 1), 1);
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        parse(&["--frobnicate"]);
    }
}
