//! # shortcut-bench — the paper's evaluation, regenerated
//!
//! One experiment module (and one binary) per table/figure of the paper:
//!
//! | Paper | Module | Binary |
//! |-------|--------------------------|-------------------|
//! | Fig 2 | [`experiments::fig2`]    | `fig2`            |
//! | Tab 1 | [`experiments::table1`]  | `table1`          |
//! | Fig 4 | [`experiments::fig4`]    | `fig4`            |
//! | Fig 5 | [`experiments::fig5`]    | `fig5`            |
//! | Fig 7a| [`experiments::fig7`]    | `fig7a`           |
//! | Fig 7b| [`experiments::fig7`]    | `fig7b`           |
//! | Fig 8 | [`experiments::fig8`]    | `fig8`            |
//! | A1–A4 | [`experiments::ablations`] | `ablate_*`      |
//!
//! All binaries accept `--scale <divisor>` (shrink cardinalities),
//! `--paper-scale` (the original cardinalities — needs a 32 GB-class
//! machine), and `--quick` (tiny smoke-test sizes). Absolute numbers depend
//! on the host; the *shapes* (who wins, crossovers) are what reproduces.

pub mod experiments;
pub mod report;
pub mod scale;
pub mod timing;
pub mod workload;

pub use report::Table;
pub use scale::ScaleArgs;
pub use timing::Stopwatch;
pub use workload::KeyGen;
