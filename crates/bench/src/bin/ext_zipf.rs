//! Extension experiment: Zipf-skewed access over both node variants.
use shortcut_bench::experiments::ext_skew;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = ext_skew::SkewOpts::from_scale(&s);
    println!("ext_zipf: {} slots, thetas {:?}", opts.slots, opts.thetas);
    ext_skew::run(&opts).print();
}
