//! Ablation A3: mapper poll interval vs sync latency.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    ablations::a3_poll_interval(&ScaleArgs::from_env()).print();
}
