//! Ablation A7: shard-count scaling — one writer thread per shard on
//! fill, then single-threaded, per-shard-threaded, and batched lookups.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    ablations::a7_shards(&s).print();
}
