//! Regenerates Figure 8 (synchronization under a mixed workload).
use shortcut_bench::experiments::fig8;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig8::Fig8Opts::from_scale(&s);
    println!(
        "fig8: bulk {}, {} waves x {} ({}% inserts)",
        opts.bulk,
        opts.waves,
        opts.wave_size,
        opts.insert_fraction * 100.0
    );
    let points = fig8::run(&opts);
    fig8::table(&points, &opts).print();
}
