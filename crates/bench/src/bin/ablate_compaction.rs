//! Ablation A5: bucket-layout compaction policy sweep (off / rebuild-only
//! / rebuild+background / background-only).
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    ablations::a5_compaction(&ScaleArgs::from_env()).print();
}
