//! Regenerates Figure 5 (effect of TLB shootdowns): real-OS run plus the
//! deterministic vmsim model (see DESIGN.md substitution #1).
use shortcut_bench::experiments::fig5;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig5::Fig5Opts::from_scale(&s);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fig5: region {} pages, {} remaps, readers {:?} ({} hardware threads — reader counts >= {} run oversubscribed)",
        opts.region_pages, opts.remaps, opts.reader_counts, cores, cores
    );
    fig5::table("Figure 5 (OS) — TLB shootdowns", &fig5::run_os(&opts)).print();
    fig5::table(
        "Figure 5 (vmsim model, 8 simulated cores) — TLB shootdowns",
        &fig5::run_model(&opts),
    )
    .print();
}
