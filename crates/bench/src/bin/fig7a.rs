//! Regenerates Figure 7a (accumulated insertion time, five schemes).
use shortcut_bench::experiments::fig7;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig7::Fig7Opts::from_scale(&s);
    println!("fig7a: {} inserts", opts.inserts);
    let r = fig7::run(&opts);
    fig7::table_7a(&r, &opts).print();
    fig7::table_7b(&r, &opts).print(); // lookups come for free after the fill
}
