//! Regenerates Figure 2 (traditional vs shortcut inner node).
use shortcut_bench::experiments::fig2;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig2::Fig2Opts::from_scale(&s);
    println!("fig2: pairs {:?}, {} accesses", opts.pairs, opts.accesses);
    fig2::run(&opts).print();
}
