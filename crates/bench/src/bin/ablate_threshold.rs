//! Ablation A2: fan-in routing threshold sweep.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    ablations::a2_threshold(&ScaleArgs::from_env()).print();
}
