//! Ablation A6: the physical slot size (`2^k` base pages per bucket),
//! crossed with directory-order compaction on/off.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    ablations::a6_slot_size(&s).print();
}
