//! Regenerates Figure 4 (impact of fan-in).
use shortcut_bench::experiments::fig4;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig4::Fig4Opts::from_scale(&s);
    println!("fig4: {} slots, fanins {:?}", opts.slots, opts.fanins);
    fig4::run(&opts).print();
    // Companion table: the TLB mechanism behind the crossover, on the
    // deterministic vmsim model (smaller sizes; behaviour, not wall-clock).
    fig4::run_model(
        opts.slots.min(1 << 16),
        &opts.fanins,
        opts.lookups.min(200_000),
        opts.seed,
    )
    .print();
}
