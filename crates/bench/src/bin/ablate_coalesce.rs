//! Ablation A1: coalesced vs per-slot rewiring.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    ablations::a1_coalescing(&ScaleArgs::from_env()).print();
}
