//! Ablation A4: eager vs lazy shortcut population.
use shortcut_bench::experiments::ablations;
use shortcut_bench::ScaleArgs;

fn main() {
    ablations::a4_populate(&ScaleArgs::from_env()).print();
}
