//! Regenerates Table 1 (cost of creation and use of an inner node).
use shortcut_bench::experiments::table1;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = table1::Table1Opts::from_scale(&s);
    println!(
        "table1: n = {} slots, {} accesses",
        opts.slots, opts.accesses
    );
    let (_, table) = table1::run(&opts);
    table.print();
}
