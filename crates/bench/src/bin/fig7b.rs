//! Regenerates Figure 7b (lookup time after 100M-style fill).
use shortcut_bench::experiments::fig7;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    let opts = fig7::Fig7Opts::from_scale(&s);
    println!(
        "fig7b: {} inserts then {} lookups",
        opts.inserts, opts.lookups
    );
    let r = fig7::run(&opts);
    fig7::table_7b(&r, &opts).print();
}
