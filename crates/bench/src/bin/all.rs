//! Runs the entire evaluation (every table, figure and ablation) in order.
use shortcut_bench::experiments::*;
use shortcut_bench::ScaleArgs;

fn main() {
    let s = ScaleArgs::from_env();
    println!("Running the full evaluation at {:?}\n", s);

    fig2::run(&fig2::Fig2Opts::from_scale(&s)).print();
    let (_, t1) = table1::run(&table1::Table1Opts::from_scale(&s));
    t1.print();
    fig4::run(&fig4::Fig4Opts::from_scale(&s)).print();

    let f5 = fig5::Fig5Opts::from_scale(&s);
    fig5::table("Figure 5 (OS) — TLB shootdowns", &fig5::run_os(&f5)).print();
    fig5::table(
        "Figure 5 (vmsim model) — TLB shootdowns",
        &fig5::run_model(&f5),
    )
    .print();

    let f7 = fig7::Fig7Opts::from_scale(&s);
    let r7 = fig7::run(&f7);
    fig7::table_7a(&r7, &f7).print();
    fig7::table_7b(&r7, &f7).print();

    let f8 = fig8::Fig8Opts::from_scale(&s);
    fig8::table(&fig8::run(&f8), &f8).print();

    ablations::a1_coalescing(&s).print();
    ablations::a2_threshold(&s).print();
    ablations::a3_poll_interval(&s).print();
    ablations::a4_populate(&s).print();
    ablations::a5_compaction(&s).print();
    ablations::a6_slot_size(&s).print();
    ablations::a7_shards(&s).print();

    // Close with the facade's merged snapshot in its stable rendering —
    // the same block the server's INFO reply and mixed_workload's exit
    // report print, so every driver surfaces the full counter set the
    // same way instead of an ad hoc subset.
    facade_snapshot(s.pick(2_000_000, 200_000, 20_000));
}

fn facade_snapshot(entries: usize) {
    use taking_the_shortcut::ShortcutIndex;
    println!("\nFacade snapshot — {entries} entries, stable StatsSnapshot rendering\n");
    let mut index = ShortcutIndex::builder()
        .capacity(entries)
        .build()
        .expect("facade build");
    for k in 0..entries as u64 {
        index.insert(k, !k).expect("insert");
    }
    index.wait_sync(std::time::Duration::from_secs(30));
    let keys: Vec<u64> = (0..entries as u64).step_by(3).collect();
    let hits = index.get_many(&keys).iter().flatten().count();
    assert_eq!(hits, keys.len());
    print!("{}", index.stats());
}
