//! Deterministic workload generators.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seeded generator of benchmark keys and access patterns.
pub struct KeyGen {
    rng: StdRng,
}

impl KeyGen {
    /// A generator with a fixed seed (all experiments default to 42 so runs
    /// are reproducible).
    pub fn new(seed: u64) -> Self {
        KeyGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `n` uniform random 64-bit keys (the paper's insert workload).
    /// Duplicates are possible but vanishingly rare and handled as updates.
    pub fn uniform_keys(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.rng.random::<u64>()).collect()
    }

    /// One uniform index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    /// `count` uniform indices in `[0, n)` (the paper's random-access
    /// streams).
    pub fn indices(&mut self, n: usize, count: usize) -> Vec<u32> {
        assert!(n <= u32::MAX as usize, "index space exceeds u32");
        (0..count)
            .map(|_| self.rng.random_range(0..n) as u32)
            .collect()
    }

    /// Sample `count` keys (with replacement) from an existing key set —
    /// the "100 % hits" lookup workload of Figure 7b.
    pub fn hits_from(&mut self, keys: &[u64], count: usize) -> Vec<u64> {
        (0..count)
            .map(|_| keys[self.rng.random_range(0..keys.len())])
            .collect()
    }

    /// Zipf-distributed indices over `[0, n)` with exponent `theta`
    /// (used by the skewed-workload extension experiments).
    pub fn zipf_indices(&mut self, n: usize, theta: f64, count: usize) -> Vec<u32> {
        // Precompute the harmonic normalizer once.
        let h: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta) / h;
            cdf.push(acc);
        }
        // Map ranks to a shuffled identity so hot keys are spread out.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut self.rng);
        (0..count)
            .map(|_| {
                let u: f64 = self.rng.random::<f64>();
                let rank = cdf.partition_point(|&c| c < u).min(n - 1);
                perm[rank]
            })
            .collect()
    }

    /// Shuffle a vector in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = KeyGen::new(7).uniform_keys(100);
        let b = KeyGen::new(7).uniform_keys(100);
        let c = KeyGen::new(8).uniform_keys(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn indices_in_range() {
        let mut g = KeyGen::new(1);
        for i in g.indices(50, 1000) {
            assert!((i as usize) < 50);
        }
    }

    #[test]
    fn hits_only_sample_existing() {
        let mut g = KeyGen::new(2);
        let keys = vec![10, 20, 30];
        for k in g.hits_from(&keys, 100) {
            assert!(keys.contains(&k));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = KeyGen::new(3);
        let xs = g.zipf_indices(1000, 1.1, 10_000);
        let mut counts = std::collections::HashMap::new();
        for x in xs {
            *counts.entry(x).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        // The hottest key must dominate vastly over the uniform expectation (10).
        assert!(max > 100, "zipf max count {max} too flat");
    }
}
