//! **Figure 8** (§4.2): synchronization under a mixed workload.
//!
//! Both EH and Shortcut-EH are bulk-loaded with 92 M entries; then four
//! waves of 2 M accesses are fired, each starting with 1 % insertions
//! followed by 99 % lookups. Lookup time is reported per 10 k-access batch,
//! together with the version numbers of the traditional and the shortcut
//! directory — showing the shortcut going out of sync at each insert burst
//! and catching up shortly after, at which point Shortcut-EH's lookup time
//! drops below EH's again.

use crate::scale::ScaleArgs;
use crate::timing::us;
use crate::workload::KeyGen;
use crate::Table;
use shortcut_exhash::{EhConfig, ExtendibleHash, Index, ShortcutEh, ShortcutEhConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Options for the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Opts {
    /// Bulk-loaded entries (paper: 92 M).
    pub bulk: usize,
    /// Number of access waves (paper: 4).
    pub waves: usize,
    /// Accesses per wave (paper: 2 M).
    pub wave_size: usize,
    /// Fraction of each wave that is insertions, fired first (paper: 1 %).
    pub insert_fraction: f64,
    /// Accesses per reported batch (paper: 10 k).
    pub batch: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Fig8Opts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        Fig8Opts {
            bulk: s.pick(92_000_000, 9_200_000, 100_000),
            waves: 4,
            wave_size: s.pick(2_000_000, 200_000, 10_000),
            insert_fraction: 0.01,
            batch: s.pick(10_000, 2_000, 500),
            seed: 42,
        }
    }
}

/// One reported batch.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Total accesses performed so far.
    pub accesses: usize,
    /// EH lookup time in this batch, in microseconds.
    pub eh_us: f64,
    /// Shortcut-EH lookup time in this batch, in microseconds.
    pub sceh_us: f64,
    /// Traditional-directory version number.
    pub tver: u64,
    /// Shortcut-directory version number.
    pub sver: u64,
}

/// Run the mixed workload; returns the time series.
pub fn run(opts: &Fig8Opts) -> Vec<Fig8Point> {
    let mut gen = KeyGen::new(opts.seed);
    let bulk_keys = gen.uniform_keys(opts.bulk);

    let mut eh = ExtendibleHash::try_new(EhConfig {
        pool: super::fig7::bench_pool_config(opts.bulk * 2),
        ..EhConfig::default()
    })
    .expect("EH construction failed");
    let mut sceh = ShortcutEh::try_new(ShortcutEhConfig {
        eh: EhConfig {
            pool: super::fig7::bench_pool_config(opts.bulk * 2),
            ..EhConfig::default()
        },
        // Compaction keeps the bulk-loaded directory inside the VMA
        // budget at default scale, so the waves run shortcut-served on a
        // stock kernel instead of suspended.
        maint: shortcut_core::MaintConfig {
            compaction: shortcut_core::CompactionPolicy::on(),
            ..shortcut_core::MaintConfig::default()
        },
        ..Default::default()
    })
    .expect("Shortcut-EH construction failed");

    for &k in &bulk_keys {
        eh.insert(k, k).expect("bulk insert failed");
        sceh.insert(k, k).expect("bulk insert failed");
    }
    // Start the waves from a synced state, as the paper's plot does. At
    // default scale on a stock kernel the directory can outgrow the VMA
    // budget (`vm.max_map_count`): maintenance then suspends and the run
    // proceeds with traditionally-routed Shortcut-EH lookups instead of
    // aborting — raise the sysctl for shortcut-served numbers.
    let mut synced = sceh.wait_sync(Duration::from_secs(120));
    if !synced && !sceh.shortcut_suspended() {
        // A transient suspension resolved between wait_sync giving up and
        // the check above (deferred rebuild applied); settle it.
        synced = sceh.wait_sync(Duration::from_secs(10));
    }
    if sceh.shortcut_suspended() {
        eprintln!(
            "fig8: directory exceeds the VMA budget ({:?}); \
             shortcut suspended, lookups run traditionally",
            sceh.vma_stats()
        );
    } else {
        assert!(synced, "shortcut never synced after bulk load");
    }

    let inserts_per_wave = (opts.wave_size as f64 * opts.insert_fraction) as usize;
    let lookups_per_wave = opts.wave_size - inserts_per_wave;
    let fresh_keys = gen.uniform_keys(inserts_per_wave * opts.waves);

    let mut points = Vec::new();
    let mut accesses = 0usize;
    let mut eh_batch = Duration::ZERO;
    let mut sceh_batch = Duration::ZERO;
    let mut in_batch = 0usize;

    let flush = |accesses: usize,
                 eh_batch: &mut Duration,
                 sceh_batch: &mut Duration,
                 in_batch: &mut usize,
                 sceh: &ShortcutEh,
                 points: &mut Vec<Fig8Point>| {
        if *in_batch == 0 {
            return;
        }
        let (tver, sver) = sceh.versions();
        points.push(Fig8Point {
            accesses,
            eh_us: us(*eh_batch),
            sceh_us: us(*sceh_batch),
            tver,
            sver,
        });
        *eh_batch = Duration::ZERO;
        *sceh_batch = Duration::ZERO;
        *in_batch = 0;
    };

    for wave in 0..opts.waves {
        // 1 % insert burst (counted as accesses, not timed as lookups —
        // the paper plots lookup time only).
        for i in 0..inserts_per_wave {
            let k = fresh_keys[wave * inserts_per_wave + i];
            eh.insert(k, k).expect("insert failed");
            sceh.insert(k, k).expect("insert failed");
            accesses += 1;
            in_batch += 1;
            if in_batch >= opts.batch {
                flush(
                    accesses,
                    &mut eh_batch,
                    &mut sceh_batch,
                    &mut in_batch,
                    &sceh,
                    &mut points,
                );
            }
        }
        // 99 % lookups, timed per batch.
        for i in 0..lookups_per_wave {
            let k = bulk_keys[(wave * 31 + i * 7919) % bulk_keys.len()];
            let t0 = Instant::now();
            black_box(eh.get(k));
            eh_batch += t0.elapsed();
            let t0 = Instant::now();
            black_box(sceh.get(k));
            sceh_batch += t0.elapsed();
            accesses += 1;
            in_batch += 1;
            if in_batch >= opts.batch {
                flush(
                    accesses,
                    &mut eh_batch,
                    &mut sceh_batch,
                    &mut in_batch,
                    &sceh,
                    &mut points,
                );
            }
        }
    }
    flush(
        accesses,
        &mut eh_batch,
        &mut sceh_batch,
        &mut in_batch,
        &sceh,
        &mut points,
    );
    if std::env::var("FIG8_DEBUG").is_ok() {
        eprintln!(
            "fig8 debug: versions={:?} metrics={:?}",
            sceh.versions(),
            sceh.maint_metrics()
        );
        std::thread::sleep(Duration::from_millis(200));
        eprintln!(
            "fig8 debug after 200ms idle: versions={:?} metrics={:?}",
            sceh.versions(),
            sceh.maint_metrics()
        );
    }
    assert!(sceh.maint_error().is_none(), "mapper thread failed");
    points
}

/// Render the series as a table.
pub fn table(points: &[Fig8Point], opts: &Fig8Opts) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 8 — {} bulk + {} waves x {} accesses ({}% inserts first)",
            Table::n(opts.bulk as u64),
            opts.waves,
            Table::n(opts.wave_size as u64),
            (opts.insert_fraction * 100.0) as u32,
        ),
        &[
            "accesses",
            "EH batch [us]",
            "Shortcut-EH batch [us]",
            "trad version",
            "shortcut version",
            "in sync",
        ],
    );
    for p in points {
        t.row(&[
            Table::n(p.accesses as u64),
            Table::f(p.eh_us),
            Table::f(p.sceh_us),
            p.tver.to_string(),
            p.sver.to_string(),
            if p.tver == p.sver { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shows_sync_recovery() {
        let opts = Fig8Opts {
            bulk: 30_000,
            waves: 2,
            wave_size: 4_000,
            insert_fraction: 0.01,
            batch: 400,
            seed: 5,
        };
        let points = run(&opts);
        assert!(!points.is_empty());
        // Versions are monotone and the shortcut eventually catches up by
        // the end of a wave tail.
        for w in points.windows(2) {
            assert!(w[1].tver >= w[0].tver);
            assert!(w[1].sver >= w[0].sver);
        }
        let last = points.last().unwrap();
        assert!(last.sver <= last.tver);
    }
}
