//! Ablations A1–A4: design choices the paper fixes by fiat, swept here.

use crate::experiments::experiment_pool;
use crate::scale::ScaleArgs;
use crate::timing::{ms, Stopwatch};
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{CompactionPolicy, MaintConfig, RoutePolicy, ShortcutNode};
use shortcut_exhash::{BucketLayout, EhConfig, Index, ShardedIndex, ShortcutEh, ShortcutEhConfig};
use shortcut_rewire::{max_map_count, PageIdx, PoolConfig, SlotLayout, VmaBudget};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// **A1** — how much does coalescing contiguous rewirings into single
/// `mmap` calls (paper §2.1, last paragraph) save during shortcut creation?
pub fn a1_coalescing(s: &ScaleArgs) -> Table {
    let slots = s.pick(1 << 20, 1 << 17, 1 << 12);
    let mut pool = experiment_pool(slots);
    let handle = pool.handle();
    let run = pool.alloc_run(slots).expect("alloc failed");

    // Per-slot rewiring (the worst case measured in Table 1).
    let mut node_a = ShortcutNode::new(slots).expect("reserve failed");
    let sw = Stopwatch::start();
    for i in 0..slots {
        node_a
            .set_slot(i, &handle, PageIdx(run.0 + i))
            .expect("rewire failed");
    }
    let per_slot_ms = ms(sw.elapsed());
    let per_slot_calls = node_a.mmap_calls();

    // Coalesced batch (contiguous leaves -> one call).
    let mut node_b = ShortcutNode::new(slots).expect("reserve failed");
    let assignments: Vec<(usize, PageIdx)> = (0..slots).map(|i| (i, PageIdx(run.0 + i))).collect();
    let sw = Stopwatch::start();
    let calls = node_b
        .set_batch(&handle, &assignments)
        .expect("batch failed");
    let batch_ms = ms(sw.elapsed());

    let mut t = Table::new(
        format!("Ablation A1 — coalesced vs per-slot rewiring, {slots} slots"),
        &["strategy", "mmap calls", "time [ms]", "us/slot"],
    );
    t.row(&[
        "per-slot".into(),
        Table::n(per_slot_calls),
        Table::f(per_slot_ms),
        Table::f(per_slot_ms * 1000.0 / slots as f64),
    ]);
    t.row(&[
        "coalesced".into(),
        Table::n(calls),
        Table::f(batch_ms),
        Table::f(batch_ms * 1000.0 / slots as f64),
    ]);
    t
}

/// **A2** — the fan-in routing threshold (paper: 8). For each fan-in we
/// measure both paths and report which threshold policies route correctly.
pub fn a2_threshold(s: &ScaleArgs) -> Table {
    // Aliased (fan-in > 1) points need ~one VMA per slot; power of two so
    // every fan-in in the sweep divides it (see fig4).
    let slots = crate::experiments::floor_pow2(
        s.pick(1 << 20, 1 << 17, 1 << 12)
            .min(crate::experiments::aliased_slot_cap()),
    )
    .max(128);
    let lookups = s.pick(5_000_000, 2_000_000, 50_000);
    let fanins = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let policies = [1.0, 4.0, 8.0, 16.0, 64.0];

    let mut t = Table::new(
        "Ablation A2 — fan-in routing threshold sweep",
        &[
            "fan-in",
            "trad [ms]",
            "shortcut [ms]",
            "best path",
            "thresholds choosing best",
        ],
    );
    for f in fanins {
        let (trad, short) = super::fig4::run_point(slots, f, lookups, 42);
        let best_is_shortcut = short <= trad;
        let right: Vec<String> = policies
            .iter()
            .filter(|&&p| {
                RoutePolicy::with_threshold(p).use_shortcut(f as f64, true) == best_is_shortcut
            })
            .map(|p| format!("{p}"))
            .collect();
        t.row(&[
            f.to_string(),
            Table::f(trad),
            Table::f(short),
            if best_is_shortcut {
                "shortcut"
            } else {
                "traditional"
            }
            .into(),
            right.join(","),
        ]);
    }
    t
}

/// **A3** — the mapper poll interval (paper: 25 ms): insert a burst, then
/// measure how long the shortcut stays out of sync.
pub fn a3_poll_interval(s: &ScaleArgs) -> Table {
    let bulk = s.pick(2_000_000, 500_000, 50_000);
    let burst = s.pick(100_000, 20_000, 2_000);
    let intervals_ms = [1u64, 5, 25, 100];

    let mut t = Table::new(
        "Ablation A3 — mapper poll interval vs sync latency",
        &[
            "poll [ms]",
            "bulk insert [ms]",
            "burst insert [ms]",
            "time to sync after burst [ms]",
        ],
    );
    for poll in intervals_ms {
        let mut sceh = ShortcutEh::try_new(ShortcutEhConfig {
            eh: EhConfig {
                pool: super::fig7::bench_pool_config(bulk * 2),
                ..EhConfig::default()
            },
            maint: MaintConfig {
                poll_interval: Duration::from_millis(poll),
                ..MaintConfig::default()
            },
            ..Default::default()
        })
        .expect("Shortcut-EH construction failed");
        let mut gen = KeyGen::new(42);
        let keys = gen.uniform_keys(bulk + burst);

        let sw = Stopwatch::start();
        for &k in &keys[..bulk] {
            sceh.insert(k, k).expect("insert failed");
        }
        let bulk_ms = ms(sw.elapsed());
        assert!(sceh.wait_sync(Duration::from_secs(60)));

        let sw = Stopwatch::start();
        for &k in &keys[bulk..] {
            sceh.insert(k, k).expect("insert failed");
        }
        let burst_ms = ms(sw.elapsed());

        let t0 = Instant::now();
        while !sceh.in_sync() && t0.elapsed() < Duration::from_secs(60) {
            std::hint::spin_loop();
        }
        let sync_ms = ms(t0.elapsed());

        t.row(&[
            poll.to_string(),
            Table::f(bulk_ms),
            Table::f(burst_ms),
            Table::f(sync_ms),
        ]);
    }
    t
}

/// **A4** — eager vs lazy page-table population of the shortcut directory
/// at index scale: the first synced lookup round pays the faults when lazy.
pub fn a4_populate(s: &ScaleArgs) -> Table {
    let n = s.pick(5_000_000, 1_000_000, 50_000);
    let lookups = s.pick(5_000_000, 1_000_000, 50_000);

    let mut t = Table::new(
        "Ablation A4 — eager vs lazy shortcut population (Shortcut-EH)",
        &[
            "population",
            "1st lookup round [ms]",
            "2nd lookup round [ms]",
        ],
    );
    for eager in [true, false] {
        let mut sceh = ShortcutEh::try_new(ShortcutEhConfig {
            eh: EhConfig {
                pool: super::fig7::bench_pool_config(n * 2),
                ..EhConfig::default()
            },
            maint: MaintConfig {
                eager_populate: eager,
                ..MaintConfig::default()
            },
            ..Default::default()
        })
        .expect("Shortcut-EH construction failed");
        let mut gen = KeyGen::new(42);
        let keys = gen.uniform_keys(n);
        for &k in &keys {
            sceh.insert(k, k).expect("insert failed");
        }
        assert!(sceh.wait_sync(Duration::from_secs(120)));
        let probe = gen.hits_from(&keys, lookups);

        let round = || {
            let sw = Stopwatch::start();
            let mut found = 0u64;
            for &k in &probe {
                if sceh.get(k).is_some() {
                    found += 1;
                }
            }
            std::hint::black_box(found);
            ms(sw.elapsed())
        };
        let r1 = round();
        let r2 = round();
        t.row(&[
            if eager {
                "eager (MAP_POPULATE/touch)"
            } else {
                "lazy (fault on access)"
            }
            .into(),
            Table::f(r1),
            Table::f(r2),
        ]);
    }
    t
}

/// **A5** — directory-order physical compaction (the PR 4 subsystem):
/// fill a Shortcut-EH under each policy arm, then report the layout's
/// planned-VMA estimate against its fan-in ideal, the live budget
/// footprint, whether the shortcut had to suspend, the relocation work
/// spent, and the synced lookup throughput. The sweep covers off (PR 3
/// behavior), rebuild-only, rebuild+background, and background-only.
pub fn a5_compaction(s: &ScaleArgs) -> Table {
    let n = s.pick(10_000_000, 4_000_000, 60_000);
    let lookups = s.pick(5_000_000, 1_000_000, 60_000);
    let arms: [(&str, CompactionPolicy); 4] = [
        ("off", CompactionPolicy::disabled()),
        (
            "rebuild",
            CompactionPolicy {
                on_rebuild: true,
                background_moves: 0,
                trigger_fraction: 0.25,
            },
        ),
        ("rebuild+bg32", CompactionPolicy::on()),
        (
            "bg8",
            CompactionPolicy {
                on_rebuild: false,
                background_moves: 8,
                trigger_fraction: 0.25,
            },
        ),
    ];

    let mut t = Table::new(
        format!("Ablation A5 — bucket-layout compaction, {n} keys"),
        &[
            "policy",
            "fill [ms]",
            "layout VMAs",
            "ideal",
            "live VMAs",
            "suspended",
            "pages moved",
            "lookups [ms]",
        ],
    );
    for (name, policy) in arms {
        let mut sceh = ShortcutEh::try_new(ShortcutEhConfig {
            eh: EhConfig {
                pool: super::fig7::bench_pool_config(n * 2),
                ..EhConfig::default()
            },
            maint: MaintConfig {
                compaction: policy,
                ..MaintConfig::default()
            },
            ..Default::default()
        })
        .expect("Shortcut-EH construction failed");
        let mut gen = KeyGen::new(42);
        let keys = gen.uniform_keys(n);

        let sw = Stopwatch::start();
        for &k in &keys {
            sceh.insert(k, k).expect("insert failed");
        }
        let fill_ms = ms(sw.elapsed());
        let _ = sceh.wait_sync(Duration::from_secs(120));

        let layout = sceh.layout_vmas().expect("layout estimate failed");
        let ideal = sceh.ideal_layout_vmas();
        let vma = sceh.vma_stats();
        let moved = sceh.maint_metrics().pages_moved;
        let suspended = sceh.shortcut_suspended();

        let probe = gen.hits_from(&keys, lookups);
        let sw = Stopwatch::start();
        let mut found = 0u64;
        for &k in &probe {
            if sceh.get(k).is_some() {
                found += 1;
            }
        }
        std::hint::black_box(found);
        let lookup_ms = ms(sw.elapsed());

        t.row(&[
            name.into(),
            Table::f(fill_ms),
            Table::n(layout as u64),
            Table::n(ideal as u64),
            Table::n(vma.live_vmas()),
            if suspended { "YES" } else { "no" }.into(),
            Table::n(moved),
            Table::f(lookup_ms),
        ]);
    }
    t
}

/// Pool sized for `expected_entries` at an arbitrary slot layout (the
/// slot-aware generalization of [`super::fig7::bench_pool_config`]).
fn slot_pool_config(expected_entries: usize, layout: SlotLayout) -> PoolConfig {
    let per_slot = BucketLayout::for_slot(layout).steady_entries(0.35);
    let slots = (expected_entries / per_slot).max(16);
    // Byte-denominated floors (~256 KB growth, ≥ 16 MB view at k = 0).
    let growth_floor = layout.slots_for_bytes(1 << 18);
    let view_floor = layout.slots_for_bytes(1 << 24).max(64);
    PoolConfig {
        initial_pages: 1,
        min_growth_pages: slots.clamp(growth_floor, 4096), // audit:allow(page-literal): growth clamp in pages (a count), not a byte size
        shrink_threshold_pages: usize::MAX,
        pretouch: true,
        view_capacity_pages: ((slots * 4).max(view_floor)).next_power_of_two(),
        slot_layout: layout,
        ..PoolConfig::default()
    }
}

/// **A6** — the physical slot size (`2^k` base pages per bucket), crossed
/// with compaction on/off. Larger slots are the other §3.2 lever next to
/// compaction: the same keys need `~2^k`-fold fewer buckets, so the
/// directory is shallower and the live mapping footprint drops by about
/// `2^k` — enough that even the *no-compaction* worst-case admission fits
/// a stock `vm.max_map_count` at scales where k = 0 suspends. The lookup
/// column watches for regressions from the layout indirection (k = 0 must
/// match the pre-SlotLayout numbers) and from the larger in-bucket probe
/// distance at high k.
pub fn a6_slot_size(s: &ScaleArgs) -> Table {
    let n = s.pick(4_000_000, 2_000_000, 60_000);
    let lookups = s.pick(2_000_000, 1_000_000, 60_000);
    let slot_powers = [0u32, 2, 4];
    let arms: [(&str, CompactionPolicy); 2] = [
        ("off", CompactionPolicy::disabled()),
        ("on", CompactionPolicy::on()),
    ];

    let mut t = Table::new(
        format!("Ablation A6 — slot size × compaction, {n} keys"),
        &[
            "k (slot)",
            "bucket cap",
            "compaction",
            "fill [ms]",
            "depth",
            "live VMAs",
            "suspended",
            "lookups [ms]",
        ],
    );
    for k in slot_powers {
        let layout = SlotLayout::new(k).expect("slot power in range");
        for (name, policy) in arms {
            let mut sceh = ShortcutEh::try_new(ShortcutEhConfig {
                eh: EhConfig {
                    pool: slot_pool_config(n * 2, layout),
                    ..EhConfig::default()
                },
                maint: MaintConfig {
                    compaction: policy,
                    ..MaintConfig::default()
                },
                ..Default::default()
            })
            .expect("Shortcut-EH construction failed");
            let mut gen = KeyGen::new(42);
            let keys = gen.uniform_keys(n);

            let sw = Stopwatch::start();
            for &key in &keys {
                sceh.insert(key, key).expect("insert failed");
            }
            let fill_ms = ms(sw.elapsed());
            let _ = sceh.wait_sync(Duration::from_secs(120));
            let vma = sceh.vma_stats();
            let suspended = sceh.shortcut_suspended();
            let depth = sceh.global_depth();

            let probe = gen.hits_from(&keys, lookups);
            let sw = Stopwatch::start();
            let mut found = 0u64;
            for &key in &probe {
                if sceh.get(key).is_some() {
                    found += 1;
                }
            }
            std::hint::black_box(found);
            let lookup_ms = ms(sw.elapsed());

            t.row(&[
                format!("{k} ({} KB)", layout.slot_bytes() / 1024),
                Table::n(sceh.bucket_layout().capacity() as u64),
                name.into(),
                Table::f(fill_ms),
                depth.to_string(),
                Table::n(vma.live_vmas()),
                if suspended { "YES" } else { "no" }.into(),
                Table::f(lookup_ms),
            ]);
        }
    }
    t
}

/// **A7** — shard-count scaling (the sharded-index tentpole): `2^s`
/// Shortcut-EH shards routed by the top hash bits, filled by **one writer
/// thread per shard** through the shared-write API, then probed three
/// ways after sync — single-threaded `get`, one reader thread per shard,
/// and batched `get_many`. All shards of an arm share one VMA budget
/// under fair-share admission (the `fair pools` column confirms it).
///
/// The table header records the host's available parallelism: on a
/// single-core host the per-shard threads time-slice one core, so fill
/// and N-thread lookup times measure routing + locking overhead rather
/// than true parallel speedup — read them against that baseline.
pub fn a7_shards(s: &ScaleArgs) -> Table {
    let n = s.pick(4_000_000, 2_000_000, 60_000);
    let lookups = s.pick(2_000_000, 1_000_000, 60_000);
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut t = Table::new(
        format!("Ablation A7 — shard scaling, {n} keys, host parallelism {host}"),
        &[
            "shards",
            "fill 1wr/shard [ms]",
            "sync [ms]",
            "depth max",
            "live VMAs",
            "fair pools",
            "lookup 1T [ms]",
            "lookup NT [ms]",
            "get_many [ms]",
            "suspended",
        ],
    );
    for bits in [0u32, 1, 2] {
        let shards = 1usize << bits;
        // One budget shared by the arm's shards, sized from the sysctl
        // like production but private to the arm (isolates accounting).
        let budget = VmaBudget::with_limit(max_map_count());
        let layout = SlotLayout::default();
        let index = ShardedIndex::try_new_with(bits, |_| ShortcutEhConfig {
            eh: EhConfig {
                pool: PoolConfig {
                    vma_budget: Some(Arc::clone(&budget)),
                    ..slot_pool_config((n / shards) * 2, layout)
                },
                ..EhConfig::default()
            },
            maint: MaintConfig {
                compaction: CompactionPolicy::on(),
                ..MaintConfig::default()
            },
            ..Default::default()
        })
        .expect("sharded construction failed");

        let mut gen = KeyGen::new(42);
        let keys = gen.uniform_keys(n);
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for &k in &keys {
            per_shard[index.shard_of(k)].push(k);
        }

        let sw = Stopwatch::start();
        std::thread::scope(|scope| {
            for part in &per_shard {
                let index = &index;
                scope.spawn(move || {
                    let batches = part.chunks(4096); // audit:allow(page-literal): key-batch size, not a page size
                    for chunk in batches {
                        let batch: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k)).collect();
                        index.insert_batch_shared(&batch).expect("insert failed");
                    }
                });
            }
        });
        let fill_ms = ms(sw.elapsed());

        let sw = Stopwatch::start();
        let _ = index.wait_sync(Duration::from_secs(240));
        let sync_ms = ms(sw.elapsed());
        let vma = index.vma_stats();

        let probe = gen.hits_from(&keys, lookups);
        let sw = Stopwatch::start();
        let mut found = 0u64;
        for &key in &probe {
            if index.get(key).is_some() {
                found += 1;
            }
        }
        std::hint::black_box(found);
        let one_ms = ms(sw.elapsed());

        let sw = Stopwatch::start();
        std::thread::scope(|scope| {
            for part in probe.chunks(probe.len().div_ceil(shards).max(1)) {
                let index = &index;
                scope.spawn(move || {
                    let mut found = 0u64;
                    for &key in part {
                        if index.get(key).is_some() {
                            found += 1;
                        }
                    }
                    std::hint::black_box(found);
                });
            }
        });
        let nt_ms = ms(sw.elapsed());

        let sw = Stopwatch::start();
        let mut found = 0usize;
        let batches = probe.chunks(4096); // audit:allow(page-literal): key-batch size, not a page size
        for chunk in batches {
            found += index.get_many(chunk).iter().flatten().count();
        }
        std::hint::black_box(found);
        let batch_ms = ms(sw.elapsed());

        t.row(&[
            shards.to_string(),
            Table::f(fill_ms),
            Table::f(sync_ms),
            index.global_depth().to_string(),
            Table::n(vma.live_vmas()),
            Table::n(vma.fair_pools),
            Table::f(one_ms),
            Table::f(nt_ms),
            Table::f(batch_ms),
            if index.shortcut_suspended() {
                "YES"
            } else {
                "no"
            }
            .into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScaleArgs {
        ScaleArgs {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn a1_coalescing_wins() {
        let t = a1_coalescing(&quick());
        let s = t.render();
        assert!(s.contains("per-slot"));
        assert!(s.contains("coalesced"));
    }

    #[test]
    fn a5_compaction_runs_all_arms() {
        let t = a5_compaction(&quick());
        let s = t.render();
        assert!(s.contains("off"));
        assert!(s.contains("rebuild+bg32"));
        assert!(s.contains("bg8"));
    }

    #[test]
    fn a7_shards_runs_all_arms() {
        let t = a7_shards(&quick());
        let s = t.render();
        for shards in ["1", "2", "4"] {
            assert!(s.contains(shards), "missing arm {shards}:\n{s}");
        }
        assert!(!s.contains("YES"), "a quick run must not suspend:\n{s}");
    }

    #[test]
    fn a6_slot_size_runs_all_cells() {
        let t = a6_slot_size(&quick());
        let s = t.render();
        assert!(s.contains("0 (4 KB)"));
        assert!(s.contains("2 (16 KB)"));
        assert!(s.contains("4 (64 KB)"));
        assert!(s.contains("on"));
        assert!(s.contains("off"));
    }

    #[test]
    fn a3_poll_runs() {
        let t = a3_poll_interval(&quick());
        assert!(t.render().contains("25"));
    }

    #[test]
    fn a4_populate_runs() {
        let t = a4_populate(&quick());
        assert!(t.render().contains("eager"));
    }
}
