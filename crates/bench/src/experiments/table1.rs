//! **Table 1** (§3.1): the cost of creating and then using an inner node
//! with n = 2²² slots — traditional vs. shortcut with lazy vs. eager page-
//! table population.
//!
//! Phases: (1) allocate the node, (2) set n indirections to n leaves,
//! (3) optionally populate the page table, (4) 10 M random accesses,
//! (5) the same accesses again. Times for (1)–(3) are normalized per page,
//! (4)–(5) per access, exactly like the paper's table.

use crate::experiments::experiment_pool;
use crate::scale::ScaleArgs;
use crate::timing::{us_per, Stopwatch};
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::PageIdx;
use std::hint::black_box;

/// Options for the Table 1 run.
#[derive(Debug, Clone)]
pub struct Table1Opts {
    /// Slot count n (paper: 2²²).
    pub slots: usize,
    /// Random accesses (paper: 10⁷).
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Table1Opts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        Table1Opts {
            slots: s.pick(1 << 22, 1 << 20, 1 << 13),
            accesses: s.pick(10_000_000, 10_000_000, 200_000),
            seed: 42,
        }
    }
}

/// Per-variant phase measurements (all in µs, already normalized).
#[derive(Debug, Clone, Copy, Default)]
pub struct Phases {
    /// Allocation per page.
    pub allocate: f64,
    /// Setting one indirection (per page).
    pub set_indir: f64,
    /// Page-table population per page (None for variants that skip it).
    pub populate: Option<f64>,
    /// First access round, per access.
    pub access1: f64,
    /// Second access round, per access.
    pub access2: f64,
}

/// Results for the three variants.
#[derive(Debug, Clone, Copy)]
pub struct Table1Result {
    /// Pointer-array node.
    pub traditional: Phases,
    /// Shortcut with lazy population (faults on first access).
    pub lazy: Phases,
    /// Shortcut with an explicit population phase.
    pub eager: Phases,
}

/// Run the experiment.
pub fn run(opts: &Table1Opts) -> (Table1Result, Table) {
    let n = opts.slots;
    let mut pool = experiment_pool(n);
    let handle = pool.handle();
    let run = pool.alloc_run(n).expect("leaf allocation failed");
    for i in 0..n {
        // SAFETY: fresh pool pages.
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = i as u64;
        }
    }
    let idx = KeyGen::new(opts.seed).indices(n, opts.accesses);

    // ---- Traditional ----
    let sw = Stopwatch::start();
    let mut trad = TraditionalNode::new(n);
    let t_alloc = sw.elapsed();

    let sw = Stopwatch::start();
    for i in 0..n {
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i)));
    }
    let t_set = sw.elapsed();

    let (t_a1, t_a2) = {
        let access = || {
            let sw = Stopwatch::start();
            let mut sum = 0u64;
            for &i in &idx {
                // SAFETY: all slots set above.
                sum = sum.wrapping_add(unsafe { *(trad.get(i as usize) as *const u64) });
            }
            black_box(sum);
            sw.elapsed()
        };
        (access(), access())
    };
    let traditional = Phases {
        allocate: us_per(t_alloc, n),
        set_indir: us_per(t_set, n),
        populate: None,
        access1: us_per(t_a1, opts.accesses),
        access2: us_per(t_a2, opts.accesses),
    };

    // ---- Shortcut (lazy and eager) ----
    let shortcut_variant = |eager: bool| -> Phases {
        let sw = Stopwatch::start();
        let mut node = ShortcutNode::new(n).expect("reserve failed");
        let s_alloc = sw.elapsed();

        // Worst case from the paper: one mmap per slot (no coalescing).
        let sw = Stopwatch::start();
        for i in 0..n {
            node.set_slot(i, &handle, PageIdx(run.0 + i))
                .expect("rewire failed");
        }
        let s_set = sw.elapsed();

        let populate = if eager {
            let sw = Stopwatch::start();
            let touched = node.populate();
            assert_eq!(touched, n);
            Some(us_per(sw.elapsed(), n))
        } else {
            None
        };

        let base = node.base();
        let access = || {
            let sw = Stopwatch::start();
            let mut sum = 0u64;
            for &i in &idx {
                // SAFETY: all slots rewired above.
                sum = sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
            }
            black_box(sum);
            sw.elapsed()
        };
        let (a1, a2) = (access(), access());
        Phases {
            allocate: us_per(s_alloc, n),
            set_indir: us_per(s_set, n),
            populate,
            access1: us_per(a1, opts.accesses),
            access2: us_per(a2, opts.accesses),
        }
    };

    let lazy = shortcut_variant(false);
    let eager = shortcut_variant(true);

    let result = Table1Result {
        traditional,
        lazy,
        eager,
    };

    let mut table = Table::new(
        format!(
            "Table 1 — creating and accessing an inner node with {} slots \
             ({} random accesses)",
            Table::n(n as u64),
            Table::n(opts.accesses as u64)
        ),
        &[
            "phase",
            "Traditional",
            "Shortcut (lazy)",
            "Shortcut (eager)",
        ],
    );
    let opt = |o: Option<f64>| o.map(Table::f).unwrap_or_else(|| "-".into());
    table.row(&[
        "Allocate [us/page]".into(),
        Table::f(result.traditional.allocate),
        Table::f(result.lazy.allocate),
        Table::f(result.eager.allocate),
    ]);
    table.row(&[
        "Set Indir. [us/page]".into(),
        Table::f(result.traditional.set_indir),
        Table::f(result.lazy.set_indir),
        Table::f(result.eager.set_indir),
    ]);
    table.row(&[
        "Populate [us/page]".into(),
        opt(result.traditional.populate),
        opt(result.lazy.populate),
        opt(result.eager.populate),
    ]);
    table.row(&[
        "1. Access [us/access]".into(),
        Table::f(result.traditional.access1),
        Table::f(result.lazy.access1),
        Table::f(result.eager.access1),
    ]);
    table.row(&[
        "2. Access [us/access]".into(),
        Table::f(result.traditional.access2),
        Table::f(result.lazy.access2),
        Table::f(result.eager.access2),
    ]);
    (result, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_on_small_input() {
        let (r, t) = run(&Table1Opts {
            slots: 1 << 12,
            accesses: 100_000,
            seed: 1,
        });
        // Setting indirections is far more expensive for the shortcut
        // (mmap per slot vs pointer store).
        assert!(
            r.lazy.set_indir > 10.0 * r.traditional.set_indir,
            "lazy set {} vs trad set {}",
            r.lazy.set_indir,
            r.traditional.set_indir
        );
        // The lazy variant's first access round pays the faults.
        assert!(
            r.lazy.access1 > r.eager.access1,
            "lazy a1 {} vs eager a1 {}",
            r.lazy.access1,
            r.eager.access1
        );
        // Second rounds converge (within a generous factor).
        assert!(r.lazy.access2 < r.lazy.access1);
        assert!(t.render().contains("Set Indir."));
    }
}
