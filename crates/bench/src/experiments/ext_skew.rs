//! **Extension experiment** (beyond the paper): skewed access.
//!
//! The paper evaluates uniform workloads only. Under Zipfian access the TLB
//! caches the translations of the hot slots, which should *help* the
//! shortcut disproportionately: its per-slot translations are exactly what
//! the TLB caches, whereas the traditional path's second indirection still
//! wanders through the leaf heap. This experiment sweeps the Zipf exponent
//! and reports both paths, plus the five hash schemes under skewed lookups.

use crate::experiments::experiment_pool;
use crate::scale::ScaleArgs;
use crate::timing::{ms, Stopwatch};
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::PageIdx;
use std::hint::black_box;

/// Options for the skew experiment.
#[derive(Debug, Clone)]
pub struct SkewOpts {
    /// Inner-node slots.
    pub slots: usize,
    /// Zipf exponents to sweep (0.0 = uniform).
    pub thetas: Vec<f64>,
    /// Lookups per point.
    pub lookups: usize,
    /// Workload seed.
    pub seed: u64,
}

impl SkewOpts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        SkewOpts {
            slots: s.pick(1 << 20, 1 << 17, 1 << 12),
            thetas: vec![0.0, 0.5, 0.8, 0.99, 1.2],
            lookups: s.pick(10_000_000, 2_000_000, 50_000),
            seed: 42,
        }
    }
}

/// Run the node-level skew sweep (fan-in 1).
pub fn run(opts: &SkewOpts) -> Table {
    let slots = opts.slots;
    let mut pool = experiment_pool(slots);
    let handle = pool.handle();
    let run = pool.alloc_run(slots).expect("alloc failed");
    for i in 0..slots {
        // SAFETY: fresh pool pages.
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = i as u64;
        }
    }
    let mut trad = TraditionalNode::new(slots);
    for i in 0..slots {
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i)));
    }
    let mut short = ShortcutNode::new_populated(slots).expect("reserve failed");
    let assignments: Vec<(usize, PageIdx)> = (0..slots).map(|i| (i, PageIdx(run.0 + i))).collect();
    short
        .set_batch(&handle, &assignments)
        .expect("rewire failed");
    short.populate();

    let mut t = Table::new(
        format!(
            "Extension — Zipf-skewed access over a {}-slot node, {} lookups",
            Table::n(slots as u64),
            Table::n(opts.lookups as u64)
        ),
        &["zipf theta", "traditional [ms]", "shortcut [ms]", "speedup"],
    );
    for &theta in &opts.thetas {
        let mut gen = KeyGen::new(opts.seed);
        let idx = if theta == 0.0 {
            gen.indices(slots, opts.lookups)
        } else {
            gen.zipf_indices(slots, theta, opts.lookups)
        };

        let sw = Stopwatch::start();
        let mut sum = 0u64;
        for &i in &idx {
            // SAFETY: all slots set.
            sum = sum.wrapping_add(unsafe { *(trad.get(i as usize) as *const u64) });
        }
        black_box(sum);
        let trad_ms = ms(sw.elapsed());

        let base = short.base();
        let sw = Stopwatch::start();
        let mut sum = 0u64;
        for &i in &idx {
            // SAFETY: all slots rewired.
            sum = sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
        }
        black_box(sum);
        let short_ms = ms(sw.elapsed());

        t.row(&[
            format!("{theta:.2}"),
            Table::f(trad_ms),
            Table::f(short_ms),
            Table::f(trad_ms / short_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_sweep_runs() {
        let t = run(&SkewOpts {
            slots: 1 << 10,
            thetas: vec![0.0, 0.99],
            lookups: 20_000,
            seed: 1,
        });
        let s = t.render();
        assert!(s.contains("0.99"), "{s}");
    }
}
