//! **Figure 4** (§3.2): impact of the fan-in — how many neighboring inner-
//! node slots index the same leaf. The traditional variant's accessed
//! virtual span shrinks with growing fan-in (k·8 B directory + m pages of
//! leaves), while the shortcut always spans k pages; beyond a crossover
//! fan-in the traditional variant wins on TLB behaviour.

use crate::experiments::experiment_pool;
use crate::scale::ScaleArgs;
use crate::timing::{ms, Stopwatch};
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::PageIdx;
use std::hint::black_box;

/// Options for the Figure 4 run.
#[derive(Debug, Clone)]
pub struct Fig4Opts {
    /// Inner-node slot count (paper: 2²²).
    pub slots: usize,
    /// Fan-ins to sweep (paper: 512 … 1, halving).
    pub fanins: Vec<usize>,
    /// Random lookups per point (paper: 10⁷).
    pub lookups: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Fig4Opts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        let all = vec![512, 256, 128, 64, 32, 16, 8, 4, 2, 1];
        Fig4Opts {
            // Fan-in > 1 points cost ~one VMA per slot (aliased runs do not
            // coalesce); cap to the map-count budget so the sweep survives
            // default kernels. Floored to a power of two no smaller than
            // the largest fan-in, so every fan-in in the sweep divides it
            // (run_point asserts divisibility) whatever --scale was given.
            slots: crate::experiments::floor_pow2(
                s.pick(1 << 22, 1 << 18, 1 << 13)
                    .min(crate::experiments::aliased_slot_cap()),
            )
            .max(512),
            fanins: if s.quick { vec![64, 8, 1] } else { all },
            lookups: s.pick(10_000_000, 10_000_000, 100_000),
            seed: 42,
        }
    }
}

/// Measure one fan-in point; returns (traditional ms, shortcut ms).
pub fn run_point(slots: usize, fanin: usize, lookups: usize, seed: u64) -> (f64, f64) {
    assert!(
        fanin >= 1 && slots.is_multiple_of(fanin),
        "fanin must divide slots"
    );
    let leaves = slots / fanin;
    let mut pool = experiment_pool(leaves);
    let handle = pool.handle();
    let run = pool.alloc_run(leaves).expect("leaf allocation failed");
    for i in 0..leaves {
        // SAFETY: fresh pool pages.
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = i as u64;
        }
    }

    let mut trad = TraditionalNode::new(slots);
    for i in 0..slots {
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + i / fanin)));
    }

    let mut shortcut = ShortcutNode::new_populated(slots).expect("reserve failed");
    let assignments: Vec<(usize, PageIdx)> = (0..slots)
        .map(|i| (i, PageIdx(run.0 + i / fanin)))
        .collect();
    shortcut
        .set_batch(&handle, &assignments)
        .expect("rewire failed");
    shortcut.populate();

    let idx = KeyGen::new(seed).indices(slots, lookups);

    let sw = Stopwatch::start();
    let mut sum = 0u64;
    for &i in &idx {
        // SAFETY: every slot set above.
        sum = sum.wrapping_add(unsafe { *(trad.get(i as usize) as *const u64) });
    }
    black_box(sum);
    let trad_ms = ms(sw.elapsed());

    let base = shortcut.base();
    let sw = Stopwatch::start();
    let mut sum = 0u64;
    for &i in &idx {
        // SAFETY: every slot rewired above.
        sum = sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
    }
    black_box(sum);
    let short_ms = ms(sw.elapsed());

    (trad_ms, short_ms)
}

/// Run the sweep and produce the result table.
pub fn run(opts: &Fig4Opts) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 4 — fan-in sweep over a {}-slot node, {} random lookups",
            Table::n(opts.slots as u64),
            Table::n(opts.lookups as u64)
        ),
        &[
            "fan-in",
            "leaves",
            "traditional [ms]",
            "shortcut [ms]",
            "winner",
        ],
    );
    for &f in &opts.fanins {
        let (t, s) = run_point(opts.slots, f, opts.lookups, opts.seed);
        table.row(&[
            f.to_string(),
            Table::n((opts.slots / f) as u64),
            Table::f(t),
            Table::f(s),
            if t < s { "traditional" } else { "shortcut" }.into(),
        ]);
    }
    table
}

/// Deterministic vmsim companion to Figure 4: for each fan-in, simulate the
/// two access paths and report TLB miss rates and page-walk DRAM touches —
/// the *mechanism* behind the crossover (§3.2: the traditional variant
/// touches `k·8 B + m` pages of virtual memory, the shortcut always `k`
/// pages).
pub fn run_model(slots: usize, fanins: &[usize], lookups: usize, seed: u64) -> Table {
    use shortcut_vmsim::{AddressSpace, Mmu, VirtAddr, PAGE_SIZE};

    let mut t = Table::new(
        format!("Figure 4 (vmsim model) — TLB behaviour, {slots}-slot node"),
        &[
            "fan-in",
            "trad TLB miss %",
            "short TLB miss %",
            "trad walk-DRAM/access",
            "short walk-DRAM/access",
            "trad model-ns",
            "short model-ns",
        ],
    );
    for &f in fanins {
        let leaves = slots / f;
        let mut aspace = AddressSpace::new();
        // Traditional: the directory array (8 B/slot) + m leaf pages.
        let dir_pages = (slots * 8).div_ceil(PAGE_SIZE as usize);
        let dir = aspace.mmap_anon(dir_pages);
        let file = aspace.create_file();
        aspace.resize_file(file, leaves).unwrap();
        let leaf_area = aspace.mmap_anon(leaves);
        aspace
            .mmap_file_fixed(leaf_area, leaves, file, 0, true)
            .unwrap();
        for p in 0..dir_pages {
            aspace.populate(dir.vpn().add(p as u64)).unwrap();
        }
        // Shortcut: one k-page area rewired onto the same file pages.
        let shortcut = aspace.mmap_anon(slots);
        for s in 0..slots {
            aspace
                .mmap_file_fixed(
                    VirtAddr(shortcut.0 + (s as u64) * PAGE_SIZE),
                    1,
                    file,
                    s / f,
                    true,
                )
                .unwrap();
        }

        let idx = KeyGen::new(seed).indices(slots, lookups);
        let mut mmu_t = Mmu::with_defaults();
        let mut mmu_s = Mmu::with_defaults();
        let mut t_ns = 0.0;
        let mut s_ns = 0.0;
        for &i in &idx {
            let i = i as usize;
            // Traditional: one access into the directory array, then one
            // into the leaf page.
            t_ns += mmu_t
                .access(&mut aspace, VirtAddr(dir.0 + (i * 8) as u64))
                .unwrap()
                .ns;
            t_ns += mmu_t
                .access(
                    &mut aspace,
                    VirtAddr(leaf_area.0 + ((i / f) as u64) * PAGE_SIZE),
                )
                .unwrap()
                .ns;
            // Shortcut: a single access through the rewired page.
            s_ns += mmu_s
                .access(&mut aspace, VirtAddr(shortcut.0 + (i as u64) * PAGE_SIZE))
                .unwrap()
                .ns;
        }
        let st = &mmu_t.stats;
        let ss = &mmu_s.stats;
        t.row(&[
            f.to_string(),
            Table::f(st.tlb_miss_rate() * 100.0),
            Table::f(ss.tlb_miss_rate() * 100.0),
            Table::f(st.walk_dram_touches as f64 / lookups as f64),
            Table::f(ss.walk_dram_touches as f64 / lookups as f64),
            Table::f(t_ns / lookups as f64),
            Table::f(s_ns / lookups as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_crossover_mechanism() {
        // At high fan-in the shortcut's span (k pages) must show a clearly
        // worse TLB miss rate than the traditional path's inputs.
        let t = run_model(1 << 14, &[64, 1], 30_000, 1);
        let s = t.render();
        assert!(s.contains("fan-in"), "{s}");
    }

    #[test]
    fn point_runs_for_various_fanins() {
        for f in [1, 4, 64] {
            let (t, s) = run_point(1 << 10, f, 20_000, 1);
            assert!(t > 0.0 && s > 0.0, "fanin {f}");
        }
    }

    #[test]
    #[should_panic]
    fn fanin_must_divide() {
        run_point(1000, 3, 10, 1);
    }
}
