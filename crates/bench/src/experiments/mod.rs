//! One module per table/figure of the paper, plus ablations.

pub mod ablations;
pub mod ext_skew;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod table1;

use shortcut_rewire::{PagePool, PoolConfig};

/// A pool sized for `pages` contiguous bucket pages with pre-touch enabled,
/// as the experiments need (paper: pool pages are initialized at creation
/// "to avoid expensive hard page faults at access time").
pub(crate) fn experiment_pool(pages: usize) -> PagePool {
    PagePool::new(PoolConfig {
        initial_pages: 0,
        min_growth_pages: pages.max(1),
        shrink_threshold_pages: usize::MAX, // experiments never shrink
        pretouch: true,
        view_capacity_pages: pages + 64,
        ..PoolConfig::default()
    })
    .expect("pool creation failed — not enough memory for this scale?")
}

/// Largest shortcut-node slot count the kernel will let one node rewire.
///
/// Every slot whose neighbor maps a non-consecutive pool page costs one VMA
/// (`mmap` returns `ENOMEM` past `vm.max_map_count` — the concern the paper
/// raises about shortcut nodes). A quarter of the limit leaves room for the
/// pool view, the traditional node, and the allocator itself. Paper-scale
/// directories (up to 2²³ slots) need the sysctl raised; see README.
///
/// Derived from [`shortcut_rewire::max_map_count`], which reads the sysctl
/// **once** per process (cached, with a sane non-Linux fallback) — the
/// experiments that build raw [`shortcut_core::ShortcutNode`]s bypass the
/// mapper's budget admission, so they still cap slot counts up front.
pub(crate) fn slot_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| (shortcut_rewire::max_map_count() / 4).max(1024))
}

/// Largest power of two ≤ `x`.
pub(crate) fn floor_pow2(x: usize) -> usize {
    assert!(x > 0);
    1 << (usize::BITS - 1 - x.leading_zeros())
}

/// [`slot_budget`] floored to a power of two — the slot count to hand to
/// fan-in sweeps, which need every fan-in in the sweep to divide it.
///
/// Fan-in-1 (identity) mappings coalesce into a single `mmap` and are not
/// bounded by the budget; only aliased nodes need this cap.
pub(crate) fn aliased_slot_cap() -> usize {
    floor_pow2(slot_budget())
}
