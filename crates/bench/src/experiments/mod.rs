//! One module per table/figure of the paper, plus ablations.

pub mod ablations;
pub mod ext_skew;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod table1;

use shortcut_rewire::{PagePool, PoolConfig};

/// A pool sized for `pages` contiguous bucket pages with pre-touch enabled,
/// as the experiments need (paper: pool pages are initialized at creation
/// "to avoid expensive hard page faults at access time").
pub(crate) fn experiment_pool(pages: usize) -> PagePool {
    PagePool::new(PoolConfig {
        initial_pages: 0,
        min_growth_pages: pages.max(1),
        shrink_threshold_pages: usize::MAX, // experiments never shrink
        pretouch: true,
        view_capacity_pages: pages + 64,
        ..PoolConfig::default()
    })
    .expect("pool creation failed — not enough memory for this scale?")
}
