//! **Figure 2**: the motivating experiment — a traditional pointer-based
//! radix inner node versus a shortcut node, under 10⁷ uniformly distributed
//! random accesses, while the number of indexed 4 KB leaf nodes grows.
//!
//! Paper x-axis: (directory size MB, total bucket size MB) pairs
//! {(1,512), (2,1024), (4,2048), (8,4096), (16,8192), (32,16384),
//! (64,24576)}. A directory of `d` MB holds `d·2²⁰/8` pointer slots; `b` MB
//! of buckets is `b·256` leaf pages. Note the last paper point has *more
//! slots than leaves* (their 32 GB box could not hold 32 GB of buckets), so
//! slots map onto leaves proportionally.

use crate::experiments::experiment_pool;
use crate::scale::ScaleArgs;
use crate::timing::{ms, Stopwatch};
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{ShortcutNode, TraditionalNode};
use shortcut_rewire::PageIdx;
use std::hint::black_box;

/// Options for the Figure 2 run.
#[derive(Debug, Clone)]
pub struct Fig2Opts {
    /// (directory MB, buckets MB) pairs to sweep.
    pub pairs: Vec<(usize, usize)>,
    /// Random accesses per variant (paper: 10⁷).
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Fig2Opts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        let all = vec![
            (1, 512),
            (2, 1024),
            (4, 2048),
            (8, 4096), // audit:allow(page-literal): scale-table key count, not a page size
            (16, 8192),
            (32, 16384),
            (64, 24576),
        ];
        let pairs = if s.paper {
            all
        } else if s.quick {
            vec![(1, 64)]
        } else {
            // Default: stop at 4 GB of buckets, shrink by --scale.
            all.into_iter()
                .take(4)
                .map(|(d, b)| ((d / s.scale).max(1), (b / s.scale).max(64)))
                .collect()
        };
        Fig2Opts {
            pairs,
            accesses: s.pick(10_000_000, 10_000_000, 100_000),
            seed: 42,
        }
    }
}

/// Run the sweep and produce the result table.
pub fn run(opts: &Fig2Opts) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 2 — {} random accesses through one wide inner node",
            Table::n(opts.accesses as u64)
        ),
        &[
            "dir [MB]",
            "buckets [MB]",
            "slots",
            "leaves",
            "traditional [ms]",
            "shortcut [ms]",
            "speedup",
        ],
    );

    let budget = crate::experiments::slot_budget();
    for &(dir_mb, buckets_mb) in &opts.pairs {
        let mut slots = dir_mb << 17; // MB / 8 B per pointer
        let mut leaves = (buckets_mb << 8).min(slots); // MB / 4 KB per page

        // Fan-in-1 identity mappings coalesce into one mmap; aliased nodes
        // (fan-in > 1) pay ~one VMA per non-coalescible slot and must fit
        // the kernel's map-count budget. Cap slots but preserve the
        // slots:leaves ratio — the aliasing structure is the property the
        // experiment varies, and an integer fan-in would truncate
        // fractional ratios (the paper's (64, 24576) point) to identity.
        if leaves < slots && slots > budget {
            let (orig_slots, orig_leaves) = (slots, leaves);
            slots = budget;
            leaves = ((slots as u128 * orig_leaves as u128 / orig_slots as u128) as usize).max(1);
        }
        let (trad_ms, short_ms) = run_pair(slots, leaves, opts.accesses, opts.seed);
        table.row(&[
            dir_mb.to_string(),
            buckets_mb.to_string(),
            Table::n(slots as u64),
            Table::n(leaves as u64),
            Table::f(trad_ms),
            Table::f(short_ms),
            Table::f(trad_ms / short_ms),
        ]);
    }
    table
}

/// Measure one (slots, leaves) point; returns (traditional ms, shortcut ms).
pub fn run_pair(slots: usize, leaves: usize, accesses: usize, seed: u64) -> (f64, f64) {
    let leaves = leaves.min(slots.max(1)).max(1);
    let mut pool = experiment_pool(leaves);
    let handle = pool.handle();
    let run = pool.alloc_run(leaves).expect("leaf allocation failed");

    // Stamp each leaf with its index so reads are verifiable.
    for i in 0..leaves {
        // SAFETY: freshly allocated pool pages, exclusively ours.
        unsafe {
            *(pool.page_ptr(PageIdx(run.0 + i)) as *mut u64) = i as u64;
        }
    }

    // Traditional node: slot i -> leaf floor(i·leaves/slots).
    let mut trad = TraditionalNode::new(slots);
    for i in 0..slots {
        let leaf = i * leaves / slots;
        trad.set_slot(i, pool.page_ptr(PageIdx(run.0 + leaf)));
    }

    // Shortcut node with the equivalent mapping, eagerly populated.
    let mut shortcut = ShortcutNode::new_populated(slots).expect("shortcut reserve failed");
    let assignments: Vec<(usize, PageIdx)> = (0..slots)
        .map(|i| (i, PageIdx(run.0 + i * leaves / slots)))
        .collect();
    shortcut
        .set_batch(&handle, &assignments)
        .expect("shortcut rewiring failed");
    shortcut.populate();

    let idx = KeyGen::new(seed).indices(slots, accesses);

    // Traditional: slot load + pointer dereference.
    let sw = Stopwatch::start();
    let mut sum = 0u64;
    for &i in &idx {
        let ptr = trad.get(i as usize);
        // SAFETY: every slot points at a live leaf page.
        sum = sum.wrapping_add(unsafe { *(ptr as *const u64) });
    }
    black_box(sum);
    let trad_ms = ms(sw.elapsed());

    // Shortcut: pure address arithmetic + leaf read.
    let base = shortcut.base();
    let sw = Stopwatch::start();
    let mut sum = 0u64;
    for &i in &idx {
        // SAFETY: all slots are rewired to live pool pages.
        sum = sum.wrapping_add(unsafe { *(base.add((i as usize) << 12) as *const u64) });
    }
    black_box(sum);
    let short_ms = ms(sw.elapsed());

    (trad_ms, short_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pair_runs_and_reads_correctly() {
        let (t, s) = run_pair(1 << 10, 1 << 10, 10_000, 1);
        assert!(t > 0.0 && s > 0.0);
    }

    #[test]
    fn opts_scale_down() {
        let quick = Fig2Opts::from_scale(&ScaleArgs {
            quick: true,
            ..Default::default()
        });
        assert_eq!(quick.accesses, 100_000);
        let paper = Fig2Opts::from_scale(&ScaleArgs {
            paper: true,
            ..Default::default()
        });
        assert_eq!(paper.pairs.len(), 7);
        assert_eq!(paper.pairs[6], (64, 24576));
    }

    #[test]
    fn table_has_row_per_pair() {
        let opts = Fig2Opts {
            pairs: vec![(1, 64), (1, 128)],
            accesses: 20_000,
            seed: 7,
        };
        let t = run(&opts);
        let rendered = t.render();
        assert!(rendered.contains("Figure 2"));
        assert_eq!(rendered.lines().filter(|l| l.starts_with('|')).count(), 4); // header + sep is 1 line each + 2 rows
    }
}
