//! **Figure 7** (§4.2): the head-to-head of all five hashing schemes.
//!
//! * 7a — insert 100 M uniform 64-bit keys, report the *accumulated*
//!   insertion time along the sequence (staircase for HT, smooth for
//!   EH/Shortcut-EH, flattest for CH).
//! * 7b — 100 M random lookups (100 % hits) on the filled indexes
//!   (HT fastest, Shortcut-EH close behind, EH clearly slower).
//!
//! HT, HTI, EH and Shortcut-EH start with an effective 4 KB of space and a
//! max load factor of 0.35; CH gets a fixed table (paper: 1 GB for 100 M
//! keys — scaled proportionally here) with 128 B chained buckets.

use crate::scale::ScaleArgs;
use crate::timing::ms;
use crate::workload::KeyGen;
use crate::Table;
use shortcut_core::{CompactionPolicy, MaintConfig};
use shortcut_exhash::{
    ChConfig, ChainedHash, EhConfig, ExtendibleHash, HashTable, HtConfig, HtiConfig,
    IncrementalHashTable, Index, ShortcutEh, ShortcutEhConfig,
};
use shortcut_rewire::PoolConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Options for the Figure 7 runs.
#[derive(Debug, Clone)]
pub struct Fig7Opts {
    /// Keys to insert (paper: 10⁸).
    pub inserts: usize,
    /// Lookups after the fill (paper: 10⁸).
    pub lookups: usize,
    /// Accumulated-time checkpoints along the insert sequence.
    pub checkpoints: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Fig7Opts {
    /// Derive sizes from the scale arguments.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        let n = s.pick(100_000_000, 10_000_000, 200_000);
        Fig7Opts {
            inserts: n,
            lookups: n,
            checkpoints: 10,
            seed: 42,
        }
    }
}

/// The pool configuration the EH family uses at benchmark scale.
pub fn bench_pool_config(expected_entries: usize) -> PoolConfig {
    // Buckets hold ≤ 87 entries at load factor 0.35; with splitting churn
    // the steady state is ~55 entries/bucket. Reserve generous headroom:
    // compaction passes transiently hold live buckets plus a same-sized
    // target run, and the reservation is PROT_NONE/NORESERVE virtual
    // space, which is effectively free.
    let expected_pages = (expected_entries / 40).max(64);
    PoolConfig {
        initial_pages: 1,
        min_growth_pages: 4096, // audit:allow(page-literal): growth step in pages (a count), not a byte size
        shrink_threshold_pages: usize::MAX,
        pretouch: true,
        view_capacity_pages: (expected_pages * 2).next_power_of_two().max(1 << 16),
        ..PoolConfig::default()
    }
}

/// Build the five schemes sized for `n` inserts.
pub fn build_schemes(n: usize) -> Vec<Box<dyn Index>> {
    vec![
        Box::new(
            HashTable::try_new(HtConfig {
                initial_capacity: 256,
                max_load_factor: 0.35,
            })
            .expect("HT construction failed"),
        ),
        Box::new(
            IncrementalHashTable::try_new(HtiConfig {
                initial_capacity: 256,
                max_load_factor: 0.35,
                migration_batch: 64,
            })
            .expect("HTI construction failed"),
        ),
        Box::new(
            ChainedHash::try_new(ChConfig {
                // Paper ratio: 1 GB table (2²⁶ slots) for 10⁸ keys.
                table_slots: ((n as f64 * 0.67) as usize).next_power_of_two(),
            })
            .expect("CH construction failed"),
        ),
        Box::new(
            ExtendibleHash::try_new(EhConfig {
                pool: bench_pool_config(n),
                ..EhConfig::default()
            })
            .expect("EH construction failed"),
        ),
        Box::new(
            ShortcutEh::try_new(ShortcutEhConfig {
                eh: EhConfig {
                    pool: bench_pool_config(n),
                    ..EhConfig::default()
                },
                // Directory-order compaction keeps large directories
                // shortcut-served under the stock vm.max_map_count (the
                // seed needed the sysctl raised past ~1.5M keys).
                maint: MaintConfig {
                    compaction: CompactionPolicy::on(),
                    ..MaintConfig::default()
                },
                ..Default::default()
            })
            .expect("Shortcut-EH construction failed"),
        ),
    ]
}

/// Accumulated insert-time curve of one scheme: (entries, seconds) pairs.
pub fn insert_curve(index: &mut dyn Index, keys: &[u64], checkpoints: usize) -> Vec<(usize, f64)> {
    let step = (keys.len() / checkpoints).max(1);
    let mut curve = Vec::with_capacity(checkpoints);
    let mut accumulated = Duration::ZERO;
    let mut done = 0;
    while done < keys.len() {
        let end = (done + step).min(keys.len());
        let t0 = Instant::now();
        for &k in &keys[done..end] {
            index.insert(k, k.wrapping_mul(3)).expect("insert failed");
        }
        accumulated += t0.elapsed();
        done = end;
        curve.push((done, accumulated.as_secs_f64()));
    }
    curve
}

/// Total lookup time (ms) for a hits-only workload. Lookups go through
/// `&self` — the shared-reader path production traffic would use.
pub fn lookup_time(index: &dyn Index, lookups: &[u64]) -> f64 {
    let t0 = Instant::now();
    let mut found = 0u64;
    for &k in lookups {
        if index.get(k).is_some() {
            found += 1;
        }
    }
    black_box(found);
    assert_eq!(
        found as usize,
        lookups.len(),
        "{}: lookup workload must be 100% hits",
        index.name()
    );
    ms(t0.elapsed())
}

/// Outcome of the combined 7a+7b run.
pub struct Fig7Result {
    /// Scheme names, in run order.
    pub names: Vec<&'static str>,
    /// Insert curves per scheme.
    pub curves: Vec<Vec<(usize, f64)>>,
    /// Total lookup ms per scheme.
    pub lookup_ms: Vec<f64>,
}

/// Run inserts (7a) and lookups (7b) for all five schemes.
pub fn run(opts: &Fig7Opts) -> Fig7Result {
    let mut gen = KeyGen::new(opts.seed);
    let keys = gen.uniform_keys(opts.inserts);
    let lookups = gen.hits_from(&keys, opts.lookups);

    let mut names = Vec::new();
    let mut curves = Vec::new();
    let mut lookup_ms = Vec::new();

    for mut index in build_schemes(opts.inserts) {
        names.push(index.name());
        curves.push(insert_curve(index.as_mut(), &keys, opts.checkpoints));
        // Let Shortcut-EH's mapper catch up, as in the paper ("the shortcut
        // is in sync … and hence used for all lookups").
        if index.name() == "Shortcut-EH" {
            // Downcast-free sync: poll until versions settle via a lookup
            // warm-up window.
            std::thread::sleep(Duration::from_millis(100));
        }
        lookup_ms.push(lookup_time(index.as_ref(), &lookups));
        drop(index); // free memory before the next scheme
    }

    Fig7Result {
        names,
        curves,
        lookup_ms,
    }
}

/// Figure 7a table: accumulated seconds at each checkpoint.
pub fn table_7a(r: &Fig7Result, opts: &Fig7Opts) -> Table {
    let mut headers: Vec<String> = vec!["entries".into()];
    headers.extend(r.names.iter().map(|n| format!("{n} [s]")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!(
            "Figure 7a — accumulated insertion time, {} uniform keys, load factor 0.35",
            Table::n(opts.inserts as u64)
        ),
        &header_refs,
    );
    let points = r.curves[0].len();
    for p in 0..points {
        let mut row = vec![Table::n(r.curves[0][p].0 as u64)];
        for c in &r.curves {
            row.push(format!("{:.3}", c[p].1));
        }
        t.row(&row);
    }
    t
}

/// Figure 7b table: total lookup time per scheme.
pub fn table_7b(r: &Fig7Result, opts: &Fig7Opts) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 7b — {} lookups (100% hits) after the fill",
            Table::n(opts.lookups as u64)
        ),
        &["scheme", "lookup time [ms]"],
    );
    for (name, ms) in r.names.iter().zip(&r.lookup_ms) {
        t.row(&[name.to_string(), Table::f(*ms)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_consistent() {
        let opts = Fig7Opts {
            inserts: 30_000,
            lookups: 30_000,
            checkpoints: 5,
            seed: 3,
        };
        let r = run(&opts);
        assert_eq!(r.names.len(), 5);
        assert_eq!(r.names[0], "HT");
        assert_eq!(r.names[4], "Shortcut-EH");
        for c in &r.curves {
            assert_eq!(c.last().unwrap().0, opts.inserts);
            // Accumulated time is non-decreasing.
            for w in c.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
        for ms in &r.lookup_ms {
            assert!(*ms > 0.0);
        }
    }
}
