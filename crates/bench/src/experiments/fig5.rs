//! **Figure 5** (§3.3): the effect of TLB shootdowns.
//!
//! A *shooting* thread performs populated `mmap` remaps of randomly
//! selected pages of a large shared region while `n` reader threads scan
//! the region. The paper reports (a) the shooter's time per remap, (b) a
//! reader's time per page while the shooter runs, (c) a reader's time per
//! page without the shooter. Finding: shootdowns slow the *shooter*, not
//! the readers.
//!
//! Two modes:
//! * **OS mode** — real threads + real remaps. Faithful, but the sandbox
//!   used for development has 2 cores, so reader counts beyond 1 run
//!   oversubscribed (flagged in the output).
//! * **Model mode** — the `shortcut-vmsim` multi-core machine reproduces
//!   the full 0/1/3/7-reader series deterministically, charging IPIs to
//!   the shooting core exactly as the kernel does.

use crate::scale::ScaleArgs;
use crate::timing::us_per;
use crate::workload::KeyGen;
use crate::Table;
use shortcut_rewire::{page_size, rewire_page_raw, MemFile, VirtArea};
use shortcut_vmsim::{CoreId, Machine, MachineConfig, VirtAddr, PAGE_SIZE};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Options for the Figure 5 run.
#[derive(Debug, Clone)]
pub struct Fig5Opts {
    /// Region size in pages (paper: 2²¹ = 8 GB).
    pub region_pages: usize,
    /// Number of remaps the shooter performs (paper: 2¹⁹).
    pub remaps: usize,
    /// Reader-thread counts to sweep (paper: 0, 1, 3, 7).
    pub reader_counts: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
}

impl Fig5Opts {
    /// Derive sizes from the scale arguments.
    ///
    /// The default remap count is deliberately small (2^12): without core
    /// pinning, reader threads oversubscribing the available cores inflate
    /// the per-remap cost by orders of magnitude (scheduler + address-space
    /// lock contention), so more remaps only prolong the run without
    /// changing the shape.
    pub fn from_scale(s: &ScaleArgs) -> Self {
        Fig5Opts {
            region_pages: s.pick(1 << 21, 1 << 17, 1 << 13),
            remaps: s.pick(1 << 19, 1 << 12, 1 << 10),
            reader_counts: if s.quick {
                vec![0, 1]
            } else {
                vec![0, 1, 3, 7]
            },
            seed: 42,
        }
    }
}

/// One row of the result: costs in µs.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Reader-thread count.
    pub readers: usize,
    /// (a) Shooter µs per remap.
    pub shoot_us: f64,
    /// (b) Reader µs per page, with the shooter running.
    pub read_with_us: f64,
    /// (c) Reader µs per page, without the shooter.
    pub read_without_us: f64,
}

/// Run the real-OS experiment. Returns one row per reader count.
pub fn run_os(opts: &Fig5Opts) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for &n in &opts.reader_counts {
        rows.push(run_os_point(opts, n));
    }
    rows
}

/// Base address and length of the shared region, carried as plain
/// integers so threads can copy it (raw pointer reads across threads are
/// the *point* of the experiment; the kernel serializes mapping changes at
/// page granularity and the region outlives the thread scope).
#[derive(Clone, Copy)]
struct SharedRegion {
    base_addr: usize,
    pages: usize,
}

impl SharedRegion {
    #[inline]
    fn page(&self, p: usize) -> *const u64 {
        (self.base_addr + p * page_size()) as *const u64
    }
    #[inline]
    fn page_mut(&self, p: usize) -> *mut u8 {
        (self.base_addr + p * page_size()) as *mut u8
    }
}

fn run_os_point(opts: &Fig5Opts, readers: usize) -> Fig5Row {
    let pages = opts.region_pages;
    let file = MemFile::create("fig5-region").expect("memfd failed");
    file.resize(pages * page_size()).expect("ftruncate failed");
    let area = VirtArea::reserve(pages).expect("reserve failed");
    // Identity-map and populate the whole region with a single call.
    // SAFETY: the area is ours; the offset range is within the file.
    unsafe {
        let rc = libc::mmap(
            area.base() as *mut libc::c_void,
            pages * page_size(),
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED | libc::MAP_FIXED | libc::MAP_POPULATE,
            file.fd(),
            0,
        );
        assert_ne!(rc, libc::MAP_FAILED, "initial region map failed");
    }

    let region = SharedRegion {
        base_addr: area.base() as usize,
        pages,
    };
    let done = AtomicBool::new(false);
    let pages_read = AtomicU64::new(0);
    let read_ns = AtomicU64::new(0);

    // Shooter's random targets, pre-generated.
    let mut gen = KeyGen::new(opts.seed);
    let targets: Vec<u32> = gen.indices(pages, opts.remaps);
    let fileoffs: Vec<u32> = gen.indices(pages, opts.remaps);

    let mut shoot_us = 0.0;
    std::thread::scope(|s| {
        // Readers: sequential scans until the shooter finishes.
        for _ in 0..readers {
            let (done, pages_read, read_ns) = (&done, &pages_read, &read_ns);
            s.spawn(move || {
                let mut local_pages = 0u64;
                let t0 = Instant::now();
                'outer: loop {
                    for p in 0..region.pages {
                        if done.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        // SAFETY: region stays mapped for the whole scope.
                        unsafe {
                            std::ptr::read_volatile(region.page(p));
                        }
                        local_pages += 1;
                    }
                }
                pages_read.fetch_add(local_pages, Ordering::Relaxed);
                read_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
        // Shooter on the main thread of the scope.
        let t0 = Instant::now();
        for i in 0..opts.remaps {
            let v = targets[i] as usize;
            let off = (fileoffs[i] as usize) * page_size();
            // SAFETY: v is inside the region; off inside the file.
            unsafe {
                rewire_page_raw(region.page_mut(v), file.fd(), off, true).expect("remap failed");
            }
        }
        shoot_us = us_per(t0.elapsed(), opts.remaps);
        done.store(true, Ordering::Relaxed);
    });

    let total_read = pages_read.load(Ordering::Relaxed);
    let read_with_us = if readers == 0 {
        0.0
    } else {
        // Sum of per-thread elapsed time over the total pages read gives
        // the average per-page cost as experienced by a reader thread.
        (read_ns.load(Ordering::Relaxed) as f64 / 1e3) / total_read.max(1) as f64
    };

    // Phase (c): read the same number of pages again, no shooter.
    let read_without_us = if readers == 0 {
        0.0
    } else {
        let per_thread = (total_read / readers as u64).max(1);
        let read_ns2 = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..readers {
                let read_ns2 = &read_ns2;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut left = per_thread;
                    'outer: loop {
                        for p in 0..region.pages {
                            if left == 0 {
                                break 'outer;
                            }
                            // SAFETY: region stays mapped.
                            unsafe {
                                std::ptr::read_volatile(region.page(p));
                            }
                            left -= 1;
                        }
                    }
                    read_ns2.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        });
        (read_ns2.load(Ordering::Relaxed) as f64 / 1e3) / (per_thread * readers as u64) as f64
    };

    drop(area);
    Fig5Row {
        readers,
        shoot_us,
        read_with_us,
        read_without_us,
    }
}

/// Run the deterministic vmsim model of the same experiment.
pub fn run_model(opts: &Fig5Opts) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    // Modest model sizes: behaviour, not wall-clock, is simulated.
    let pages = opts.region_pages.min(1 << 14);
    let remaps = opts.remaps.min(1 << 12);
    // Each reader advances this many pages per shooter remap (approximates
    // the real interleaving: a remap syscall outweighs ~64 page touches).
    let pages_per_remap = 64usize;

    for &readers in &opts.reader_counts {
        let mut m = Machine::new(MachineConfig {
            cores: readers + 1,
            ..MachineConfig::default()
        });
        let file = m.aspace.create_file();
        m.aspace.resize_file(file, pages).unwrap();
        let addr = m.aspace.mmap_anon(pages);
        m.aspace
            .mmap_file_fixed(addr, pages, file, 0, true)
            .unwrap();

        let mut gen = KeyGen::new(opts.seed);
        let targets = gen.indices(pages, remaps);
        let fileoffs = gen.indices(pages, remaps);

        let shooter = CoreId(0);
        let mut shoot_ns = 0.0;
        let mut read_ns_with = 0.0;
        let mut pages_read = 0u64;
        let mut cursors = vec![0usize; readers];

        for i in 0..remaps {
            // Readers advance first (they run concurrently in reality).
            for (r, cursor) in cursors.iter_mut().enumerate() {
                let core = CoreId(r + 1);
                for _ in 0..pages_per_remap {
                    let va = VirtAddr(addr.0 + (*cursor as u64) * PAGE_SIZE);
                    let out = m.access(core, va).unwrap();
                    read_ns_with += out.ns;
                    pages_read += 1;
                    *cursor = (*cursor + 1) % pages;
                }
            }
            let va = VirtAddr(addr.0 + (targets[i] as u64) * PAGE_SIZE);
            shoot_ns += m
                .remap_from_core(shooter, va, 1, file, fileoffs[i] as usize, true)
                .unwrap();
        }

        // Phase (c): same page count, no shooter.
        let mut read_ns_without = 0.0;
        if readers > 0 {
            let per_reader = pages_read / readers as u64;
            for r in 0..readers {
                let core = CoreId(r + 1);
                let mut cursor = 0usize;
                for _ in 0..per_reader {
                    let va = VirtAddr(addr.0 + (cursor as u64) * PAGE_SIZE);
                    read_ns_without += m.access(core, va).unwrap().ns;
                    cursor = (cursor + 1) % pages;
                }
            }
        }

        rows.push(Fig5Row {
            readers,
            shoot_us: shoot_ns / remaps as f64 / 1e3,
            read_with_us: if pages_read == 0 {
                0.0
            } else {
                read_ns_with / pages_read as f64 / 1e3
            },
            read_without_us: if pages_read == 0 {
                0.0
            } else {
                read_ns_without / pages_read as f64 / 1e3
            },
        });
    }
    rows
}

/// Render rows into the paper's three-bar-per-group table.
pub fn table(title: &str, rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "readers n",
            "(a) shoot [us/remap]",
            "(b) read w/ shooter [us/page]",
            "(c) read w/o shooter [us/page]",
        ],
    );
    for r in rows {
        t.row(&[
            r.readers.to_string(),
            Table::f(r.shoot_us),
            Table::f(r.read_with_us),
            Table::f(r.read_without_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig5Opts {
        Fig5Opts {
            region_pages: 1 << 10,
            remaps: 1 << 8,
            reader_counts: vec![0, 1],
            seed: 1,
        }
    }

    #[test]
    fn os_mode_runs() {
        let rows = run_os(&tiny());
        assert_eq!(rows.len(), 2);
        assert!(rows[0].shoot_us > 0.0);
        assert_eq!(rows[0].read_with_us, 0.0); // no readers
        assert!(rows[1].read_with_us > 0.0);
        assert!(rows[1].read_without_us > 0.0);
    }

    #[test]
    fn model_shooter_pays_for_holders() {
        let opts = Fig5Opts {
            region_pages: 1 << 10,
            remaps: 1 << 8,
            reader_counts: vec![0, 3],
            seed: 1,
        };
        let rows = run_model(&opts);
        assert!(
            rows[1].shoot_us > rows[0].shoot_us,
            "shooter with readers ({}) must pay more than alone ({})",
            rows[1].shoot_us,
            rows[0].shoot_us
        );
        // Readers are barely affected: with-shooter cost within 50 % of
        // without-shooter cost.
        let r = &rows[1];
        assert!(r.read_with_us < r.read_without_us * 1.5 + 0.5);
    }
}
